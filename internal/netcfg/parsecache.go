package netcfg

import (
	"crypto/sha256"
	"sync"
	"time"

	"repro/internal/obs"
)

// Parsed is one configuration revision's complete parse product: the IR
// device, the parser's own warnings, and the full syntax-check feed (parse
// warnings plus the dialect's lint pass). Keeping all three together lets a
// cache answer both "give me the device" and "is the syntax clean" from a
// single parse. The device is shared between callers and must be treated
// as immutable — every verifier in the suite reads the IR without
// modifying it.
type Parsed struct {
	Device        *Device
	ParseWarnings []ParseWarning
	CheckWarnings []ParseWarning
}

// ParseFunc parses one configuration revision into its Parsed product.
type ParseFunc func(text string) *Parsed

// parseShards is the stripe count of the revision map. The key is a
// SHA-256 of the configuration text, so stripe selection by the first key
// byte is uniform; 64 independently-locked shards keep concurrent repair
// workers (and a shard server's batch pool) from serializing on one lock.
const parseShards = 64

// parseShard is one independently-locked stripe of the revision map.
type parseShard struct {
	mu      sync.RWMutex
	entries map[[sha256.Size]byte]*Parsed
}

// ParseCache memoizes a ParseFunc keyed by the SHA-256 of the
// configuration text, so each revision of a config is parsed exactly once
// no matter how many verifier stages and repair iterations inspect it. It
// is safe for concurrent use — the map is striped into independently
// locked shards — and concurrent misses on the same revision may parse
// twice, but both results are identical and one wins.
type ParseCache struct {
	parse ParseFunc

	shards [parseShards]parseShard
	// Counters are obs instruments from birth; SetObs adopts them into a
	// registry (counts preserved) and optionally binds a trace sink that
	// sees one parse span per cache-missing revision.
	hits   *obs.Counter
	misses *obs.Counter
	tracer *obs.Tracer

	// Stanza-level sub-cache (see stanza.go): when a dialect mounts
	// StanzaSupport, a whole-config miss is answered by splitting the text
	// into stanzas and reassembling cached fragment parses, so an edit to
	// one policy re-parses one stanza instead of the whole device.
	stanzaFields
}

// NewParseCache returns an empty cache over the given parser.
func NewParseCache(parse ParseFunc) *ParseCache {
	c := &ParseCache{parse: parse, hits: &obs.Counter{}, misses: &obs.Counter{}}
	c.fragHits, c.fragMisses, c.fragDiskHits = &obs.Counter{}, &obs.Counter{}, &obs.Counter{}
	for i := range c.shards {
		c.shards[i].entries = map[[sha256.Size]byte]*Parsed{}
	}
	return c
}

// Parse returns the memoized parse product for the text, parsing on first
// sight of the revision.
func (c *ParseCache) Parse(text string) *Parsed {
	b := []byte(text)
	key := sha256.Sum256(b)
	s := &c.shards[key[0]%parseShards]
	s.mu.RLock()
	p := s.entries[key]
	s.mu.RUnlock()
	if p != nil {
		c.hits.Inc()
		return p
	}
	var start time.Time
	if c.tracer != nil {
		start = time.Now()
	}
	if c.stanza != nil {
		p = c.stanzaParse(text, b)
	}
	if p == nil {
		p = c.parse(text)
	}
	if c.tracer != nil {
		c.tracer.Span(start, obs.Event{Stage: obs.StageParse, Bytes: int64(len(b))})
	}
	s.mu.Lock()
	if prev, ok := s.entries[key]; ok {
		// A concurrent miss beat us to it; keep the first result so every
		// caller shares one device.
		p = prev
		c.hits.Inc()
	} else {
		s.entries[key] = p
		c.misses.Inc()
	}
	s.mu.Unlock()
	return p
}

// Stats returns the hit/miss counters. Misses equal the number of distinct
// revisions parsed.
func (c *ParseCache) Stats() (hits, misses uint64) {
	return c.hits.Value(), c.misses.Value()
}

// SetObs adopts the cache's counters — whole-config and fragment — into
// a metrics registry and binds an optional trace sink; either may be
// nil. Telemetry never changes a parse product.
func (c *ParseCache) SetObs(reg *obs.Registry, tr *obs.Tracer) {
	c.tracer = tr
	if reg == nil {
		return
	}
	reg.RegisterCounter("cosynth_parse_cache_hits_total", c.hits)
	reg.RegisterCounter("cosynth_parse_cache_misses_total", c.misses)
	reg.RegisterCounter("cosynth_parse_fragment_hits_total", c.fragHits)
	reg.RegisterCounter("cosynth_parse_fragment_misses_total", c.fragMisses)
	reg.RegisterCounter("cosynth_parse_fragment_disk_hits_total", c.fragDiskHits)
}

// Len returns the number of cached revisions.
func (c *ParseCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}
