package netcfg

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// Parsed is one configuration revision's complete parse product: the IR
// device, the parser's own warnings, and the full syntax-check feed (parse
// warnings plus the dialect's lint pass). Keeping all three together lets a
// cache answer both "give me the device" and "is the syntax clean" from a
// single parse. The device is shared between callers and must be treated
// as immutable — every verifier in the suite reads the IR without
// modifying it.
type Parsed struct {
	Device        *Device
	ParseWarnings []ParseWarning
	CheckWarnings []ParseWarning
}

// ParseFunc parses one configuration revision into its Parsed product.
type ParseFunc func(text string) *Parsed

// parseShards is the stripe count of the revision map. The key is a
// SHA-256 of the configuration text, so stripe selection by the first key
// byte is uniform; 64 independently-locked shards keep concurrent repair
// workers (and a shard server's batch pool) from serializing on one lock.
const parseShards = 64

// parseShard is one independently-locked stripe of the revision map.
type parseShard struct {
	mu      sync.RWMutex
	entries map[[sha256.Size]byte]*Parsed
}

// ParseCache memoizes a ParseFunc keyed by the SHA-256 of the
// configuration text, so each revision of a config is parsed exactly once
// no matter how many verifier stages and repair iterations inspect it. It
// is safe for concurrent use — the map is striped into independently
// locked shards — and concurrent misses on the same revision may parse
// twice, but both results are identical and one wins.
type ParseCache struct {
	parse ParseFunc

	shards [parseShards]parseShard
	hits   atomic.Uint64
	misses atomic.Uint64

	// Stanza-level sub-cache (see stanza.go): when a dialect mounts
	// StanzaSupport, a whole-config miss is answered by splitting the text
	// into stanzas and reassembling cached fragment parses, so an edit to
	// one policy re-parses one stanza instead of the whole device.
	stanzaFields
}

// NewParseCache returns an empty cache over the given parser.
func NewParseCache(parse ParseFunc) *ParseCache {
	c := &ParseCache{parse: parse}
	for i := range c.shards {
		c.shards[i].entries = map[[sha256.Size]byte]*Parsed{}
	}
	return c
}

// Parse returns the memoized parse product for the text, parsing on first
// sight of the revision.
func (c *ParseCache) Parse(text string) *Parsed {
	b := []byte(text)
	key := sha256.Sum256(b)
	s := &c.shards[key[0]%parseShards]
	s.mu.RLock()
	p := s.entries[key]
	s.mu.RUnlock()
	if p != nil {
		c.hits.Add(1)
		return p
	}
	if c.stanza != nil {
		p = c.stanzaParse(text, b)
	}
	if p == nil {
		p = c.parse(text)
	}
	s.mu.Lock()
	if prev, ok := s.entries[key]; ok {
		// A concurrent miss beat us to it; keep the first result so every
		// caller shares one device.
		p = prev
		c.hits.Add(1)
	} else {
		s.entries[key] = p
		c.misses.Add(1)
	}
	s.mu.Unlock()
	return p
}

// Stats returns the hit/miss counters. Misses equal the number of distinct
// revisions parsed.
func (c *ParseCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached revisions.
func (c *ParseCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}
