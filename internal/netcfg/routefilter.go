package netcfg

import "fmt"

// MatchRouteFilter is an inline prefix constraint as used by Juniper
// "route-filter" statements: a pattern prefix plus an explicit matched
// prefix-length range. This is the construct a correct translation of
// Cisco's "ge 24" uses (the paper's "BGP prefix list issues", §3.2):
// Juniper prefix-lists cannot express length ranges, so the translation
// must use route-filter ... prefix-length-range or orlonger instead.
type MatchRouteFilter struct {
	Prefix Prefix
	MinLen int
	MaxLen int
}

// NewMatchRouteFilterExact matches exactly the given prefix.
func NewMatchRouteFilterExact(p Prefix) MatchRouteFilter {
	return MatchRouteFilter{Prefix: p, MinLen: p.Len, MaxLen: p.Len}
}

// NewMatchRouteFilterOrLonger matches the prefix and anything more specific.
func NewMatchRouteFilterOrLonger(p Prefix) MatchRouteFilter {
	return MatchRouteFilter{Prefix: p, MinLen: p.Len, MaxLen: 32}
}

// MatchString implements Match.
func (m MatchRouteFilter) MatchString() string {
	return fmt.Sprintf("route-filter %s /%d-/%d", m.Prefix, m.MinLen, m.MaxLen)
}

// MatchesPrefix reports whether a concrete announced prefix satisfies the
// filter.
func (m MatchRouteFilter) MatchesPrefix(p Prefix) bool {
	if p.Len < m.MinLen || p.Len > m.MaxLen {
		return false
	}
	return p.Addr&Mask(m.Prefix.Len) == m.Prefix.Addr
}
