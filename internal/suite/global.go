package suite

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/lightyear"
	"repro/internal/topology"
)

// GlobalHint carries the change-locality information for one global
// no-transit check inside a run: which routers' configurations changed
// since the run's previous global check, and the digest of that previous
// config set. It is the seam the repair pipeline hands its
// one-router-changed-per-iteration knowledge through, so an incremental
// verifier (in-process or a batfishd keeping a per-run simulation
// session) can re-simulate only the flooding frontier instead of the
// whole network.
type GlobalHint struct {
	// Changed lists the routers whose configuration differs from the
	// previous GlobalNoTransit call of the same run, in sorted order. nil
	// means unknown (or a run's first call), which forces a cold check; an
	// empty non-nil slice asserts nothing changed.
	Changed []string `json:"changed,omitempty"`
	// PriorDigest is ConfigDigest of the previous call's config set — the
	// content address an incremental server resumes its simulation session
	// from. Empty on a run's first call.
	PriorDigest string `json:"prior_digest,omitempty"`
}

// IncrementalGlobal is the optional capability a Verifier implements to
// accept change-locality hints on the global check. Results must be
// byte-identical to the verifier's plain GlobalNoTransit — the hint
// changes cost, never verdicts.
type IncrementalGlobal interface {
	GlobalNoTransitIncremental(t *topology.Topology, configs map[string]string,
		hint *GlobalHint) (*lightyear.GlobalResult, error)
}

// ConfigDigest content-addresses a configuration set: the hex SHA-256 of
// its canonical JSON form (Go marshals map keys sorted, so every client
// and server derives the same digest from the same set). The incremental
// global protocol keys simulation sessions by it.
func ConfigDigest(configs map[string]string) string {
	return ConfigDigestD(configs, nil)
}

// ConfigDigestD is ConfigDigest with a digest memo: the set digest is the
// SHA-256 of the canonical JSON of the per-router TextDigests rather than
// of the bodies, so re-digesting a barely-changed config set hashes only
// the revisions the memo has not seen. Every client and server computes
// the set digest the same way, so session keys still agree.
func ConfigDigestD(configs map[string]string, d *Digests) string {
	m := make(map[string]string, len(configs))
	for k, v := range configs {
		m[k] = d.Of(v)
	}
	data, _ := json.Marshal(m)
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TopologyDigest content-addresses a topology dictionary the same way;
// incremental servers compare it before resuming a session, so two runs
// whose config sets collide on different topologies can never share
// simulator state.
func TopologyDigest(t *topology.Topology) string {
	data, _ := json.Marshal(t)
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
