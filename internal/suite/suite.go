// Package suite defines the transport-neutral form of the verification
// suite's independent checks: the unit the repair pipeline's stages
// enumerate, the incremental verification cache memoizes, and the REST
// batch endpoint ships — one Check in, one Result out, whatever the
// transport. It is a leaf package so the engine (internal/core) and the
// REST client/server (internal/batfish/rest) can share the types without
// importing each other.
package suite

import (
	"fmt"

	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// Kind names one kind of independent verifier-suite check.
type Kind string

// Suite check kinds.
const (
	KindSyntax   Kind = "syntax"
	KindTopology Kind = "topology"
	KindLocal    Kind = "local"
	KindDiff     Kind = "diff"
)

// Check is one independent check of the verification suite; which fields
// are required depends on Kind.
type Check struct {
	Kind Kind
	// Config is the configuration under test (the translation for diff
	// checks).
	Config string
	// Original is the source configuration for diff checks.
	Original string
	// Spec is the router spec for topology checks.
	Spec *topology.RouterSpec
	// Req is the Lightyear requirement for local-policy checks; it
	// carries the per-attachment identity (Requirement.Attachment), so a
	// suite check is attachment-scoped — the cache memoizes and the batch
	// transport ships one independent unit per attachment obligation.
	Req *lightyear.Requirement
}

// Result is the outcome of one Check; which fields are meaningful depends
// on the check's kind.
type Result struct {
	Warnings  []netcfg.ParseWarning
	Findings  []topology.Finding
	Diffs     []campion.Finding
	Violated  bool
	Violation *lightyear.Violation
}

// Checker is the minimal per-check surface a Check can be evaluated
// against — the per-config subset of the engine's Verifier, which both
// the in-process suite and the REST client satisfy.
type Checker interface {
	CheckSyntax(config string) ([]netcfg.ParseWarning, error)
	DiffTranslation(original, translation string) ([]campion.Finding, error)
	VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error)
	CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error)
}

// Eval dispatches one Check onto a Checker. It is the single mapping from
// check kinds to verifier calls, shared by the engine's cache and the REST
// client's per-check fallback.
func Eval(v Checker, c Check) (Result, error) {
	switch c.Kind {
	case KindSyntax:
		warns, err := v.CheckSyntax(c.Config)
		return Result{Warnings: warns}, err
	case KindTopology:
		finds, err := v.VerifyTopology(*c.Spec, c.Config)
		return Result{Findings: finds}, err
	case KindLocal:
		viol, bad, err := v.CheckLocalPolicy(c.Config, *c.Req)
		res := Result{Violated: bad}
		if bad {
			res.Violation = &viol
		}
		return res, err
	case KindDiff:
		diffs, err := v.DiffTranslation(c.Original, c.Config)
		return Result{Diffs: diffs}, err
	default:
		return Result{}, fmt.Errorf("unknown suite check kind %q", c.Kind)
	}
}
