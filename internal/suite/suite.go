// Package suite defines the transport-neutral form of the verification
// suite's independent checks: the unit the repair pipeline's stages
// enumerate, the incremental verification cache memoizes, and the REST
// batch endpoint ships — one Check in, one Result out, whatever the
// transport. It is a leaf package so the engine (internal/core) and the
// REST client/server (internal/batfish/rest) can share the types without
// importing each other.
package suite

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// Kind names one kind of independent verifier-suite check.
type Kind string

// Suite check kinds.
const (
	KindSyntax   Kind = "syntax"
	KindTopology Kind = "topology"
	KindLocal    Kind = "local"
	KindDiff     Kind = "diff"
)

// Check is one independent check of the verification suite; which fields
// are required depends on Kind.
type Check struct {
	Kind Kind
	// Config is the configuration under test (the translation for diff
	// checks).
	Config string
	// Original is the source configuration for diff checks.
	Original string
	// Spec is the router spec for topology checks.
	Spec *topology.RouterSpec
	// Req is the Lightyear requirement for local-policy checks; it
	// carries the per-attachment identity (Requirement.Attachment), so a
	// suite check is attachment-scoped — the cache memoizes and the batch
	// transport ships one independent unit per attachment obligation.
	Req *lightyear.Requirement
}

// Result is the outcome of one Check; which fields are meaningful depends
// on the check's kind.
type Result struct {
	Warnings  []netcfg.ParseWarning
	Findings  []topology.Finding
	Diffs     []campion.Finding
	Violated  bool
	Violation *lightyear.Violation
}

// Checker is the minimal per-check surface a Check can be evaluated
// against — the per-config subset of the engine's Verifier, which both
// the in-process suite and the REST client satisfy.
type Checker interface {
	CheckSyntax(config string) ([]netcfg.ParseWarning, error)
	DiffTranslation(original, translation string) ([]campion.Finding, error)
	VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error)
	CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error)
}

// Eval dispatches one Check onto a Checker. It is the single mapping from
// check kinds to verifier calls, shared by the engine's cache and the REST
// client's per-check fallback. Malformed checks — a topology check with no
// spec, a local check with no requirement — return a descriptive error
// instead of panicking: checks can arrive over the wire from peers the
// process does not control (a sharded client re-hashing a dead shard's
// work, an old or buggy remote), and one bad check must not take the
// whole evaluator down.
func Eval(v Checker, c Check) (Result, error) {
	switch c.Kind {
	case KindSyntax:
		warns, err := v.CheckSyntax(c.Config)
		return Result{Warnings: warns}, err
	case KindTopology:
		if c.Spec == nil {
			return Result{}, fmt.Errorf("malformed %s check: no router spec", KindTopology)
		}
		finds, err := v.VerifyTopology(*c.Spec, c.Config)
		return Result{Findings: finds}, err
	case KindLocal:
		if c.Req == nil {
			return Result{}, fmt.Errorf("malformed %s check: no requirement", KindLocal)
		}
		viol, bad, err := v.CheckLocalPolicy(c.Config, *c.Req)
		res := Result{Violated: bad}
		if bad {
			res.Violation = &viol
		}
		return res, err
	case KindDiff:
		diffs, err := v.DiffTranslation(c.Original, c.Config)
		return Result{Diffs: diffs}, err
	default:
		return Result{}, fmt.Errorf("unknown suite check kind %q", c.Kind)
	}
}

// Key derives a Check's content address: a SHA-256 over the kind and every
// input that determines the result. Results are pure functions of their
// inputs, so the key identifies the result across processes and across
// runs — it is the memoization key of the engine's in-memory cache, the
// entry name of the shared disk cache, and the identity batfishd shards
// cache under, and it must stay in lockstep for all three. Local-policy
// keys hash the full requirement JSON, which includes the per-attachment
// identity (lightyear.Requirement.Attachment) — two obligations that
// differ only in which attachment of a dual-homed router they constrain
// memoize independently, and each attachment is its own unit of
// incremental re-verification.
func Key(c Check) [sha256.Size]byte { return KeyD(c, nil) }

// KeyD is Key with a digest memo: the configuration bodies enter the hash
// through their per-revision TextDigest instead of their full text, so a
// run that derives thousands of check keys against the same few revisions
// hashes each revision once. The key layout is shared by every client and
// server in lockstep (they are the same binary); only warm cache entries
// keyed under an older layout go cold.
func KeyD(c Check, d *Digests) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(c.Kind))
	h.Write([]byte{0})
	h.Write([]byte(d.Of(c.Config)))
	h.Write([]byte{0})
	h.Write([]byte(d.Of(c.Original)))
	if c.Spec != nil {
		// The JSON encoding is a stable serialization of the spec.
		b, _ := json.Marshal(c.Spec)
		h.Write([]byte{0})
		h.Write(b)
	}
	if c.Req != nil {
		b, _ := json.Marshal(c.Req)
		h.Write([]byte{1})
		h.Write(b)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// ShardKey is the distribution key a sharded backend hashes a check by.
// All of one configuration's whole-config checks (syntax, topology, diff)
// share a key, so they land on one shard and share that shard's parse of
// the revision; a local-policy check appends its attachment identity, so
// the obligations of a multi-homed router spread across shards
// independently — the attachment is the natural sharding unit, exactly as
// it is the natural unit of incremental re-verification.
func ShardKey(c Check) string { return ShardKeyD(c, nil) }

// ShardKeyD is ShardKey with a digest memo: the routing key carries the
// configuration's per-revision digest rather than its body, so hashing a
// check onto the ring costs O(1) in the config size once the revision has
// been digested. Client and server derive shard ownership from the same
// function, so the routing stays consistent.
func ShardKeyD(c Check, d *Digests) string {
	if c.Kind == KindLocal && c.Req != nil {
		return d.Of(c.Config) + "\x00" + c.Req.Attachment.String()
	}
	return d.Of(c.Config)
}

// Capabilities is a Backend's capability probe: what the transport behind
// the seam can do, so the engine can decide whether eager batched
// prefetching pays for itself.
type Capabilities struct {
	// Batched reports that CheckBatch amortizes transport cost across the
	// checks of one call (one REST round-trip per shard, rather than one
	// per check). The engine prefetches a whole iteration's outstanding
	// checks against batched backends and evaluates lazily otherwise,
	// preserving the stage scan's early exit where batching buys nothing.
	Batched bool
}

// Backend is the transport seam the engine dispatches verification through:
// one batch of independent checks in, one positional result slice out,
// whatever the transport. The in-process suite (CheckerBackend), a single
// REST endpoint (rest.Client), and a consistent-hash shard fan-out
// (rest.ShardedClient) are interchangeable implementations.
type Backend interface {
	// CheckBatch evaluates the checks and returns one result per check, in
	// order. An error means the batch as a whole failed; implementations
	// must not return partial results.
	CheckBatch(ctx context.Context, checks []Check) ([]Result, error)
	// Capabilities reports what the transport can do.
	Capabilities() Capabilities
}

// CheckerBackend adapts a per-check Checker into a Backend that evaluates
// sequentially in process. It reports Batched: false — there is no
// round-trip to amortize, so eager prefetching would only defeat the stage
// scan's early exit.
type CheckerBackend struct {
	Checker Checker
}

// CheckBatch implements Backend.
func (b CheckerBackend) CheckBatch(ctx context.Context, checks []Check) ([]Result, error) {
	out := make([]Result, len(checks))
	for i, c := range checks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := Eval(b.Checker, c)
		if err != nil {
			return nil, fmt.Errorf("check %d (%s): %w", i, c.Kind, err)
		}
		out[i] = res
	}
	return out, nil
}

// Capabilities implements Backend.
func (b CheckerBackend) Capabilities() Capabilities {
	return Capabilities{Batched: false}
}
