package suite

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// TextDigest content-addresses one configuration text: the hex SHA-256 of
// its bytes. It is the per-revision identity everything digest-keyed in
// the pipeline shares — check keys (KeyD), shard routing (ShardKeyD),
// config-set digests (ConfigDigestD), the global tracker's change
// detection, and the batch protocol's delta revisions.
func TextDigest(text string) string {
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:])
}

// Digests memoizes TextDigest per distinct text, so a configuration
// revision is hashed once no matter how many checks, shard routings, and
// digests of the whole config set consult it. Safe for concurrent use. A
// nil *Digests is valid everywhere one is accepted and simply computes
// without memoizing.
type Digests struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewDigests returns an empty memo.
func NewDigests() *Digests {
	return &Digests{m: map[string]string{}}
}

// Of returns the memoized TextDigest of the text.
func (d *Digests) Of(text string) string {
	if d == nil {
		return TextDigest(text)
	}
	d.mu.RLock()
	v, ok := d.m[text]
	d.mu.RUnlock()
	if ok {
		return v
	}
	v = TextDigest(text)
	d.mu.Lock()
	d.m[text] = v
	d.mu.Unlock()
	return v
}

// Len reports how many distinct texts have been digested.
func (d *Digests) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.m)
}
