package suite

import (
	"context"
	"strings"
	"testing"

	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// nopChecker answers every check cleanly; it exists so Eval's dispatch and
// guards can be exercised without a real verifier.
type nopChecker struct{}

func (nopChecker) CheckSyntax(string) ([]netcfg.ParseWarning, error) { return nil, nil }
func (nopChecker) DiffTranslation(string, string) ([]campion.Finding, error) {
	return nil, nil
}
func (nopChecker) VerifyTopology(topology.RouterSpec, string) ([]topology.Finding, error) {
	return nil, nil
}
func (nopChecker) CheckLocalPolicy(string, lightyear.Requirement) (lightyear.Violation, bool, error) {
	return lightyear.Violation{}, false, nil
}

// TestEvalRejectsMalformedChecks pins the guard on checks whose required
// pointer fields are missing: a topology check with no spec or a local
// check with no requirement must fail with a descriptive error, not a nil
// dereference — such checks can arrive over the wire from peers this
// process does not control.
func TestEvalRejectsMalformedChecks(t *testing.T) {
	for _, tc := range []struct {
		check Check
		want  string
	}{
		{Check{Kind: KindTopology, Config: "hostname R1\n"}, "no router spec"},
		{Check{Kind: KindLocal, Config: "hostname R1\n"}, "no requirement"},
		{Check{Kind: "bogus"}, "unknown suite check kind"},
	} {
		_, err := Eval(nopChecker{}, tc.check)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Eval(%s) error = %v, want mention of %q", tc.check.Kind, err, tc.want)
		}
	}
}

// TestEvalWellFormedChecks confirms the guards do not reject checks whose
// pointers are present.
func TestEvalWellFormedChecks(t *testing.T) {
	spec := &topology.RouterSpec{Name: "R1"}
	req := &lightyear.Requirement{Router: "R1", Policy: "FILTER"}
	for _, c := range []Check{
		{Kind: KindSyntax, Config: "hostname R1\n"},
		{Kind: KindTopology, Spec: spec, Config: "hostname R1\n"},
		{Kind: KindLocal, Req: req, Config: "hostname R1\n"},
		{Kind: KindDiff, Original: "hostname R1\n", Config: "system {}\n"},
	} {
		if _, err := Eval(nopChecker{}, c); err != nil {
			t.Errorf("Eval(%s) = %v, want nil", c.Kind, err)
		}
	}
}

// TestCheckerBackend pins the in-process Backend adapter: positional
// results, malformed-check errors that fail the batch, and a capability
// probe that disables eager prefetching.
func TestCheckerBackend(t *testing.T) {
	b := CheckerBackend{Checker: nopChecker{}}
	if caps := b.Capabilities(); caps.Batched {
		t.Errorf("capabilities = %+v, want unbatched", caps)
	}
	results, err := b.CheckBatch(context.Background(), []Check{
		{Kind: KindSyntax, Config: "hostname R1\n"},
		{Kind: KindDiff, Original: "a", Config: "b"},
	})
	if err != nil || len(results) != 2 {
		t.Fatalf("CheckBatch = %d results, %v; want 2, nil", len(results), err)
	}
	if _, err := b.CheckBatch(context.Background(),
		[]Check{{Kind: KindTopology}}); err == nil {
		t.Error("CheckBatch accepted a malformed topology check")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.CheckBatch(ctx, []Check{{Kind: KindSyntax}}); err == nil {
		t.Error("CheckBatch ignored a cancelled context")
	}
}

// TestShardKey pins the distribution key: whole-config checks of one
// revision share a key while local checks spread per attachment.
func TestShardKey(t *testing.T) {
	cfg := "hostname R1\n"
	syntax := Check{Kind: KindSyntax, Config: cfg}
	topo := Check{Kind: KindTopology, Spec: &topology.RouterSpec{}, Config: cfg}
	if ShardKey(syntax) != ShardKey(topo) {
		t.Error("syntax and topology checks of one config should share a shard key")
	}
	reqA := lightyear.Requirement{Router: "R2", Attachment: lightyear.AttachmentRef{
		Router: "R2", Peer: "ISP1", Direction: lightyear.DirIn}}
	reqB := lightyear.Requirement{Router: "R2", Attachment: lightyear.AttachmentRef{
		Router: "R2", Peer: "ISP2", Direction: lightyear.DirIn}}
	keyA := ShardKey(Check{Kind: KindLocal, Req: &reqA, Config: cfg})
	keyB := ShardKey(Check{Kind: KindLocal, Req: &reqB, Config: cfg})
	if keyA == keyB {
		t.Error("sibling attachments on one router should hash independently")
	}
	if got := ShardKey(Check{Kind: KindLocal, Config: cfg}); got != ShardKey(syntax) {
		t.Errorf("malformed local check key = %q, want the whole-config routing key", got)
	}
	if ShardKey(syntax) != TextDigest(cfg) {
		t.Error("whole-config routing key should be the revision's TextDigest")
	}
	d := NewDigests()
	if ShardKeyD(syntax, d) != ShardKey(syntax) || ShardKeyD(Check{Kind: KindLocal, Req: &reqA, Config: cfg}, d) != keyA {
		t.Error("memoized shard keys must equal the memo-less ones")
	}
	if d.Len() != 1 {
		t.Errorf("digest memo holds %d entries, want 1 (one revision)", d.Len())
	}
}
