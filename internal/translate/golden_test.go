package translate

import (
	"testing"

	"repro/internal/campion"
	"repro/internal/cisco"
	"repro/internal/exampledata"
	"repro/internal/juniper"
	"repro/internal/netcfg"
)

func parseExample(t *testing.T) *netcfg.Device {
	t.Helper()
	dev, warns := cisco.Parse(exampledata.CiscoExample)
	if len(warns) != 0 {
		t.Fatalf("example config has parse warnings: %v", warns)
	}
	return dev
}

func TestGoldenIsWarningFree(t *testing.T) {
	src := parseExample(t)
	golden := Golden(src)
	text := juniper.Print(golden)
	warns := juniper.Check(text)
	if len(warns) != 0 {
		t.Fatalf("golden translation has warnings: %v\nconfig:\n%s", warns, text)
	}
}

func TestGoldenRoundTripsThroughPrinter(t *testing.T) {
	src := parseExample(t)
	golden := Golden(src)
	text := juniper.Print(golden)
	reparsed, warns := juniper.Parse(text)
	if len(warns) != 0 {
		t.Fatalf("reparse warnings: %v", warns)
	}
	if reparsed.Hostname != src.Hostname {
		t.Errorf("hostname lost: got %q want %q", reparsed.Hostname, src.Hostname)
	}
	if reparsed.BGP == nil || reparsed.BGP.ASN != 65000 {
		t.Fatalf("BGP ASN lost: %+v", reparsed.BGP)
	}
	if n := reparsed.BGP.Neighbor(netcfg.MustPrefix("2.3.4.5/32").Addr); n == nil || n.RemoteAS != 65001 {
		t.Fatalf("neighbor lost: %+v", reparsed.BGP.Neighbors)
	}
}

func TestGoldenHasNoCampionDiff(t *testing.T) {
	src := parseExample(t)
	golden := Golden(src)
	// Reparse through the printer so the diff sees what Batfish would see.
	text := juniper.Print(golden)
	reparsed, _ := juniper.Parse(text)
	findings := campion.Diff(src, reparsed)
	for _, f := range findings {
		t.Errorf("unexpected diff: %s", f)
	}
}

func TestGoldenExportPolicyGatesProtocols(t *testing.T) {
	src := parseExample(t)
	golden := Golden(src)
	pol := golden.RoutePolicies["to_provider"]
	if pol == nil {
		t.Fatal("to_provider missing from translation")
	}
	// Every non-final clause must carry a protocol gate.
	for i, cl := range pol.Clauses {
		if i == len(pol.Clauses)-1 {
			if cl.Action != netcfg.Deny {
				t.Errorf("final clause should be an explicit reject, got %s", cl)
			}
			continue
		}
		found := false
		for _, m := range cl.Matches {
			if _, ok := m.(netcfg.MatchProtocol); ok {
				found = true
			}
		}
		if !found {
			t.Errorf("clause %d lacks a protocol gate: %s", cl.Seq, cl)
		}
	}
}

func TestGoldenTranslatesGeToRouteFilter(t *testing.T) {
	src := parseExample(t)
	golden := Golden(src)
	if golden.PrefixLists["our-networks"] != nil {
		t.Error("ranged prefix-list should not survive as a Junos prefix-list")
	}
	pol := golden.RoutePolicies["to_provider"]
	var rf *netcfg.MatchRouteFilter
	for _, cl := range pol.Clauses {
		for _, m := range cl.Matches {
			if f, ok := m.(netcfg.MatchRouteFilter); ok {
				rf = &f
			}
		}
	}
	if rf == nil {
		t.Fatal("no route-filter in translated export policy")
	}
	if rf.MinLen != 24 || rf.MaxLen != 32 {
		t.Errorf("route-filter range = /%d-/%d, want /24-/32", rf.MinLen, rf.MaxLen)
	}
}
