// Package translate implements the faithful Cisco→Juniper translation that
// the simulated LLM uses as its "savant" core: the correct endpoint the VPP
// loop converges to. The interesting GPT-4 behaviour — the errors — is
// layered on top by internal/llm via IR mutations of this golden output.
package translate

import (
	"repro/internal/campion"
	"repro/internal/netcfg"
)

// Golden translates a Cisco device into an equivalent Juniper device,
// handling the paper's tricky cases faithfully:
//
//   - interface renaming (GigabitEthernet0/0 -> ge-0/0/0.0, Loopback0 ->
//     lo0.0) with per-interface OSPF area/cost/passive attributes;
//   - an explicit loopback "metric 1" where Cisco's default cost applies,
//     since an absent Junos metric reads as 0 (the Table 1 attribute
//     example);
//   - prefix lists with ge/le length ranges become inline route-filter
//     conditions — Junos prefix-lists cannot express "ge 24" (§3.2);
//   - Cisco "redistribute <proto> route-map <m>" folds into the BGP export
//     policy as protocol-gated terms, and every original export term gains
//     a "from protocol bgp" condition (§3.2's redistribution difference).
func Golden(src *netcfg.Device) *netcfg.Device {
	dst := netcfg.NewDevice(src.Hostname, netcfg.VendorJuniper)

	for _, ifc := range src.Interfaces {
		translateInterface(src, dst, ifc)
	}

	// Prefix lists without length ranges carry over; ranged lists become
	// route-filters at their use sites.
	ranged := map[string]bool{}
	for _, name := range src.PrefixListNames() {
		pl := src.PrefixLists[name]
		if hasLengthRange(pl) {
			ranged[name] = true
			continue
		}
		dup := &netcfg.PrefixList{Name: pl.Name}
		dup.Entries = append(dup.Entries, pl.Entries...)
		dst.PrefixLists[name] = dup
	}
	for _, name := range src.CommunityListNames() {
		cl := src.CommunityLists[name]
		dup := &netcfg.CommunityList{Name: cl.Name}
		dup.Entries = append(dup.Entries, cl.Entries...)
		dst.CommunityLists[name] = dup
	}

	if src.BGP != nil {
		translateBGP(src, dst, ranged)
	}
	dst.StaticRoutes = append(dst.StaticRoutes, src.StaticRoutes...)
	return dst
}

func translateInterface(src, dst *netcfg.Device, ifc *netcfg.Interface) {
	out := dst.EnsureInterface(campion.CiscoToJuniperIfc(ifc.Name))
	out.Description = ifc.Description
	out.Address = ifc.Address
	out.HasAddress = ifc.HasAddress
	out.Shutdown = ifc.Shutdown
	out.OSPFArea = -1
	if src.OSPF != nil && ifc.HasAddress {
		for _, n := range src.OSPF.Networks {
			if n.Prefix.ContainsIP(ifc.Address.Addr) {
				out.OSPFArea = n.Area
				out.OSPFCost = ifc.OSPFCost
				if out.OSPFCost == 0 {
					out.OSPFCost = 1 // Cisco default; Junos must say it explicitly
				}
				out.OSPFPassive = src.OSPF.IsPassive(ifc.Name)
				break
			}
		}
	}
	if out.OSPFPassive {
		dst.EnsureOSPF(1).PassiveInterfaces = append(dst.EnsureOSPF(1).PassiveInterfaces, out.Name)
	}
}

func translateBGP(src, dst *netcfg.Device, ranged map[string]bool) {
	b := &netcfg.BGP{ASN: src.BGP.ASN, RouterID: src.BGP.RouterID}
	dst.BGP = b
	for _, n := range src.BGP.Neighbors {
		dup := *n
		b.Neighbors = append(b.Neighbors, &dup)
	}

	// Import policies translate term-for-term.
	for _, name := range src.PolicyNames() {
		if isExportPolicy(src, name) {
			continue
		}
		dst.RoutePolicies[name] = translatePolicy(src, src.RoutePolicies[name], ranged, nil)
	}
	// Export policies gain protocol gating plus redistribution terms.
	for _, name := range src.PolicyNames() {
		if !isNeighborExport(src, name) {
			continue
		}
		dst.RoutePolicies[name] = buildExportPolicy(src, name, ranged)
	}
}

// isExportPolicy reports whether the policy is attached as a neighbor
// export or used as a redistribution map (those fold into exports).
func isExportPolicy(src *netcfg.Device, name string) bool {
	if isNeighborExport(src, name) {
		return true
	}
	for _, r := range src.BGP.Redistribute {
		if r.Policy == name {
			return true
		}
	}
	return false
}

func isNeighborExport(src *netcfg.Device, name string) bool {
	for _, n := range src.BGP.Neighbors {
		if n.ExportPolicy == name {
			return true
		}
	}
	return false
}

// translatePolicy converts clauses, replacing ranged prefix-list matches
// with route-filters and optionally prepending an extra gate match.
func translatePolicy(src *netcfg.Device, pol *netcfg.RoutePolicy, ranged map[string]bool,
	gate netcfg.Match) *netcfg.RoutePolicy {
	out := &netcfg.RoutePolicy{Name: pol.Name}
	for _, cl := range pol.Clauses {
		out.Clauses = append(out.Clauses, translateClause(src, cl, ranged, gate, cl.Seq))
	}
	return out
}

func translateClause(src *netcfg.Device, cl *netcfg.PolicyClause, ranged map[string]bool,
	gate netcfg.Match, seq int) *netcfg.PolicyClause {
	dup := &netcfg.PolicyClause{Seq: seq, Action: cl.Action}
	if gate != nil {
		dup.Matches = append(dup.Matches, gate)
	}
	for _, m := range cl.Matches {
		if mpl, ok := m.(netcfg.MatchPrefixList); ok && ranged[mpl.List] {
			pl := src.PrefixLists[mpl.List]
			// Single-entry ranged lists (the common "ge N" idiom) become a
			// single route-filter; the one exercised case in the example
			// config and tests.
			for _, e := range pl.Entries {
				if e.Action != netcfg.Permit {
					continue
				}
				min, max := e.Bounds()
				dup.Matches = append(dup.Matches, netcfg.MatchRouteFilter{
					Prefix: e.Prefix, MinLen: min, MaxLen: max,
				})
			}
			continue
		}
		dup.Matches = append(dup.Matches, m)
	}
	dup.Sets = append(dup.Sets, cl.Sets...)
	return dup
}

// buildExportPolicy folds the Cisco neighbor export map and the BGP
// redistribution statements into one Junos export policy: the original
// export terms gated with "from protocol bgp", then one gated term-group
// per redistribution source, then an explicit final reject.
func buildExportPolicy(src *netcfg.Device, name string, ranged map[string]bool) *netcfg.RoutePolicy {
	out := &netcfg.RoutePolicy{Name: name}
	seq := 10
	orig := src.RoutePolicies[name]
	if orig != nil {
		for _, cl := range orig.Clauses {
			out.Clauses = append(out.Clauses,
				translateClause(src, cl, ranged, netcfg.MatchProtocol{Protocol: netcfg.RedistBGP}, seq))
			seq += 10
		}
	}
	for _, red := range src.BGP.Redistribute {
		gate := netcfg.MatchProtocol{Protocol: red.Protocol}
		if red.Policy == "" {
			out.Clauses = append(out.Clauses, &netcfg.PolicyClause{
				Seq: seq, Action: netcfg.Permit, Matches: []netcfg.Match{gate},
			})
			seq += 10
			continue
		}
		rm := src.RoutePolicies[red.Policy]
		if rm == nil {
			continue
		}
		for _, cl := range rm.Clauses {
			out.Clauses = append(out.Clauses, translateClause(src, cl, ranged, gate, seq))
			seq += 10
		}
	}
	out.Clauses = append(out.Clauses, &netcfg.PolicyClause{Seq: seq, Action: netcfg.Deny})
	return out
}

func hasLengthRange(pl *netcfg.PrefixList) bool {
	for _, e := range pl.Entries {
		if e.Ge > 0 || e.Le > 0 {
			return true
		}
	}
	return false
}
