package juniper

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netcfg"
)

// Parse parses Junos configuration text into the vendor-neutral IR.
// Anything unrecognized becomes a netcfg.ParseWarning; Parse never fails.
func Parse(text string) (*netcfg.Device, []netcfg.ParseWarning) {
	tree, warns := ParseTree(text)
	in := &interp{dev: netcfg.NewDevice("", netcfg.VendorJuniper), warnings: warns}
	in.walkRoot(tree)
	return in.dev, in.warnings
}

type interp struct {
	dev      *netcfg.Device
	warnings []netcfg.ParseWarning
}

func (in *interp) warn(n *Node, reason string) {
	in.warnings = append(in.warnings, netcfg.ParseWarning{Line: n.Line, Text: n.Text(), Reason: reason})
}

func (in *interp) walkRoot(root *Node) {
	for _, n := range root.Children {
		switch n.Key(0) {
		case "system":
			in.walkSystem(n)
		case "interfaces":
			in.walkInterfaces(n)
		case "routing-options":
			in.walkRoutingOptions(n)
		case "protocols":
			in.walkProtocols(n)
		case "policy-options":
			in.walkPolicyOptions(n)
		default:
			in.warn(n, "unknown top-level statement")
		}
	}
}

func (in *interp) walkSystem(sys *Node) {
	for _, n := range sys.Children {
		if n.Key(0) == "host-name" && len(n.Keys) == 2 {
			in.dev.Hostname = n.Key(1)
		} else {
			in.warn(n, "unsupported system statement")
		}
	}
}

func (in *interp) walkInterfaces(ifs *Node) {
	for _, phys := range ifs.Children {
		if !phys.Block {
			in.warn(phys, "expected interface block")
			continue
		}
		name := phys.Key(0)
		var desc string
		sawUnit := false
		for _, c := range phys.Children {
			switch c.Key(0) {
			case "description":
				desc = strings.Join(c.Keys[1:], " ")
			case "unit":
				sawUnit = true
				in.walkUnit(name, desc, c)
			case "disable":
				in.dev.EnsureInterface(name + ".0").Shutdown = true
			default:
				in.warn(c, "unsupported interface statement")
			}
		}
		if !sawUnit {
			ifc := in.dev.EnsureInterface(name + ".0")
			if desc != "" {
				ifc.Description = desc
			}
		}
	}
}

func (in *interp) walkUnit(phys, desc string, unit *Node) {
	unitNo := unit.Key(1)
	if unitNo == "" {
		in.warn(unit, "unit requires a number")
		unitNo = "0"
	}
	ifc := in.dev.EnsureInterface(phys + "." + unitNo)
	ifc.OSPFArea = -1
	if desc != "" {
		ifc.Description = desc
	}
	for _, c := range unit.Children {
		switch c.Key(0) {
		case "family":
			if c.Key(1) != "inet" {
				in.warn(c, "unsupported address family")
				continue
			}
			for _, f := range c.Children {
				if f.Key(0) == "address" && len(f.Keys) == 2 {
					p, err := netcfg.ParsePrefix(f.Key(1))
					if err != nil {
						in.warn(f, "invalid interface address")
						continue
					}
					// Keep the host address: Prefix stores the masked network,
					// so carry the full address via Addr and Len separately.
					addr, _ := netcfg.ParseIP(strings.SplitN(f.Key(1), "/", 2)[0])
					ifc.Address = netcfg.Prefix{Addr: addr, Len: p.Len}
					ifc.HasAddress = true
				} else {
					in.warn(f, "unsupported family inet statement")
				}
			}
		case "description":
			ifc.Description = strings.Join(c.Keys[1:], " ")
		default:
			in.warn(c, "unsupported unit statement")
		}
	}
}

func (in *interp) walkRoutingOptions(ro *Node) {
	for _, n := range ro.Children {
		switch n.Key(0) {
		case "router-id":
			id, err := netcfg.ParseIP(n.Key(1))
			if err != nil {
				in.warn(n, "invalid router-id")
				continue
			}
			if in.dev.BGP == nil {
				in.dev.BGP = &netcfg.BGP{}
			}
			in.dev.BGP.RouterID = id
		case "autonomous-system":
			asn, err := strconv.ParseUint(n.Key(1), 10, 32)
			if err != nil {
				in.warn(n, "invalid autonomous-system")
				continue
			}
			if in.dev.BGP == nil {
				in.dev.BGP = &netcfg.BGP{}
			}
			in.dev.BGP.ASN = uint32(asn)
		case "static":
			for _, r := range n.Children {
				if r.Key(0) == "route" && len(r.Keys) >= 2 {
					p, err := netcfg.ParsePrefix(r.Key(1))
					if err != nil {
						in.warn(r, "invalid static route prefix")
						continue
					}
					hopStr := ""
					if len(r.Keys) == 4 && r.Key(2) == "next-hop" {
						hopStr = r.Key(3)
					} else if nh := r.Child("next-hop"); nh != nil {
						hopStr = nh.Key(1)
					}
					hop, err := netcfg.ParseIP(hopStr)
					if err != nil {
						in.warn(r, "static route missing or invalid next-hop")
						continue
					}
					in.dev.StaticRoutes = append(in.dev.StaticRoutes, netcfg.StaticRoute{Prefix: p, NextHop: hop})
				} else {
					in.warn(r, "unsupported static statement")
				}
			}
		default:
			in.warn(n, "unsupported routing-options statement")
		}
	}
}

func (in *interp) walkProtocols(prot *Node) {
	for _, n := range prot.Children {
		switch n.Key(0) {
		case "bgp":
			in.walkBGP(n)
		case "ospf":
			in.walkOSPF(n)
		default:
			in.warn(n, "unsupported protocol")
		}
	}
}

func (in *interp) walkBGP(bgp *Node) {
	if in.dev.BGP == nil {
		in.dev.BGP = &netcfg.BGP{}
	}
	for _, g := range bgp.Children {
		if g.Key(0) != "group" {
			in.warn(g, "unsupported bgp statement (expected group)")
			continue
		}
		var defPeerAS, defLocalAS uint32
		var defImport, defExport string
		for _, c := range g.Children {
			switch c.Key(0) {
			case "type":
				// internal/external: accepted, not modelled
			case "peer-as":
				defPeerAS = in.parseASN(c)
			case "local-as":
				defLocalAS = in.parseASN(c)
			case "import":
				defImport = c.Key(1)
			case "export":
				defExport = c.Key(1)
			case "neighbor":
				in.walkNeighbor(c, defPeerAS, defLocalAS, defImport, defExport)
			default:
				in.warn(c, "unsupported bgp group statement")
			}
		}
	}
}

func (in *interp) parseASN(n *Node) uint32 {
	asn, err := strconv.ParseUint(n.Key(1), 10, 32)
	if err != nil {
		in.warn(n, "invalid AS number")
		return 0
	}
	return uint32(asn)
}

func (in *interp) walkNeighbor(nb *Node, peerAS, localAS uint32, imp, exp string) {
	addr, err := netcfg.ParseIP(nb.Key(1))
	if err != nil {
		in.warn(nb, "invalid neighbor address")
		return
	}
	n := in.dev.BGP.EnsureNeighbor(addr)
	n.RemoteAS, n.LocalAS = peerAS, localAS
	n.ImportPolicy, n.ExportPolicy = imp, exp
	for _, c := range nb.Children {
		switch c.Key(0) {
		case "peer-as":
			n.RemoteAS = in.parseASN(c)
		case "local-as":
			n.LocalAS = in.parseASN(c)
		case "import":
			n.ImportPolicy = c.Key(1)
		case "export":
			n.ExportPolicy = c.Key(1)
		case "description":
			n.Description = strings.Join(c.Keys[1:], " ")
		default:
			in.warn(c, "unsupported neighbor statement")
		}
	}
}

func (in *interp) walkOSPF(ospf *Node) {
	o := in.dev.EnsureOSPF(1)
	for _, a := range ospf.Children {
		if a.Key(0) != "area" {
			in.warn(a, "unsupported ospf statement")
			continue
		}
		area := parseArea(a.Key(1))
		for _, ifn := range a.Children {
			if ifn.Key(0) != "interface" {
				in.warn(ifn, "unsupported ospf area statement")
				continue
			}
			ifc := in.dev.EnsureInterface(ifn.Key(1))
			ifc.OSPFArea = area
			for _, attr := range ifn.Children {
				switch attr.Key(0) {
				case "metric":
					cost, err := strconv.Atoi(attr.Key(1))
					if err != nil || cost < 0 {
						in.warn(attr, "invalid ospf metric")
						continue
					}
					ifc.OSPFCost = cost
				case "passive":
					ifc.OSPFPassive = true
					o.PassiveInterfaces = append(o.PassiveInterfaces, ifn.Key(1))
				default:
					in.warn(attr, "unsupported ospf interface statement")
				}
			}
		}
	}
}

func parseArea(s string) int64 {
	if strings.Contains(s, ".") {
		if v, err := netcfg.ParseIP(s); err == nil {
			return int64(v)
		}
		return 0
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return v
}

func (in *interp) walkPolicyOptions(po *Node) {
	// First pass: communities and prefix-lists, so that policy-statement
	// references can resolve regardless of declaration order.
	for _, n := range po.Children {
		switch n.Key(0) {
		case "prefix-list":
			in.walkPrefixList(n)
		case "community":
			in.walkCommunity(n)
		}
	}
	for _, n := range po.Children {
		switch n.Key(0) {
		case "policy-statement":
			in.walkPolicyStatement(n)
		case "prefix-list", "community":
			// handled above
		default:
			in.warn(n, "unsupported policy-options statement")
		}
	}
}

func (in *interp) walkPrefixList(n *Node) {
	name := n.Key(1)
	if name == "" {
		in.warn(n, "prefix-list requires a name")
		return
	}
	pl := in.dev.PrefixLists[name]
	if pl == nil {
		pl = &netcfg.PrefixList{Name: name}
		in.dev.PrefixLists[name] = pl
	}
	for _, e := range n.Children {
		if len(e.Keys) != 1 {
			in.warn(e, "prefix-list entries must be bare prefixes")
			continue
		}
		p, err := netcfg.ParsePrefix(e.Key(0))
		if err != nil {
			// e.g. the invalid "1.2.3.0/24-32" form from the paper (§3.2):
			// Juniper prefix-lists cannot carry length ranges. Include the
			// list name so the prompt reads like Table 1's example
			// ("policy-options prefix-list our-networks 1.2.3.0/24-32").
			in.warnings = append(in.warnings, netcfg.ParseWarning{
				Line:   e.Line,
				Text:   "policy-options prefix-list " + name + " " + e.Key(0),
				Reason: "invalid prefix in prefix-list (length ranges are not valid here; use route-filter)",
			})
			continue
		}
		pl.Entries = append(pl.Entries, netcfg.PrefixListEntry{
			Seq: 5 * (len(pl.Entries) + 1), Action: netcfg.Permit, Prefix: p,
		})
	}
}

func (in *interp) walkCommunity(n *Node) {
	// community NAME members 100:1;
	if len(n.Keys) < 4 || n.Key(2) != "members" {
		in.warn(n, "community expects 'community <name> members <value>...'")
		return
	}
	name := n.Key(1)
	cl := in.dev.CommunityLists[name]
	if cl == nil {
		cl = &netcfg.CommunityList{Name: name}
		in.dev.CommunityLists[name] = cl
	}
	for _, tok := range n.Keys[3:] {
		c, err := netcfg.ParseCommunity(tok)
		if err != nil {
			in.warn(n, "invalid community member")
			continue
		}
		cl.Entries = append(cl.Entries, netcfg.CommunityListEntry{Action: netcfg.Permit, Community: c})
	}
}

func (in *interp) walkPolicyStatement(n *Node) {
	name := n.Key(1)
	if name == "" {
		in.warn(n, "policy-statement requires a name")
		return
	}
	rp := in.dev.RoutePolicies[name]
	if rp == nil {
		rp = &netcfg.RoutePolicy{Name: name}
		in.dev.RoutePolicies[name] = rp
	}
	for _, t := range n.Children {
		switch t.Key(0) {
		case "term":
			in.walkTerm(rp, t)
		case "then":
			// top-level then (default action)
			cl := &netcfg.PolicyClause{Seq: nextSeq(rp), Action: netcfg.Deny}
			in.applyThenKeys(cl, t, t.Keys[1:])
			rp.Clauses = append(rp.Clauses, cl)
		default:
			in.warn(t, "unsupported policy-statement construct")
		}
	}
	rp.SortClauses()
}

func nextSeq(rp *netcfg.RoutePolicy) int {
	if len(rp.Clauses) == 0 {
		return 10
	}
	return rp.Clauses[len(rp.Clauses)-1].Seq + 10
}

func (in *interp) walkTerm(rp *netcfg.RoutePolicy, t *Node) {
	seq := 0
	if n, err := strconv.Atoi(t.Key(1)); err == nil {
		seq = n
	} else {
		seq = nextSeq(rp)
	}
	cl := rp.Clause(seq)
	if cl == nil {
		cl = &netcfg.PolicyClause{Seq: seq, Action: netcfg.Deny}
		rp.Clauses = append(rp.Clauses, cl)
	}
	for _, c := range t.Children {
		switch c.Key(0) {
		case "from":
			in.walkFrom(cl, c)
		case "then":
			if len(c.Keys) > 1 {
				in.applyThenKeys(cl, c, c.Keys[1:])
			}
			for _, a := range c.Children {
				in.applyThenKeys(cl, a, a.Keys)
			}
		default:
			in.warn(c, "unsupported term construct")
		}
	}
}

func (in *interp) walkFrom(cl *netcfg.PolicyClause, from *Node) {
	stmts := from.Children
	if len(from.Keys) > 1 {
		stmts = append(stmts, &Node{Keys: from.Keys[1:], Line: from.Line})
	}
	for _, f := range stmts {
		switch f.Key(0) {
		case "prefix-list":
			cl.Matches = append(cl.Matches, netcfg.MatchPrefixList{List: f.Key(1)})
		case "community":
			if strings.Contains(f.Key(1), ":") {
				if c, err := netcfg.ParseCommunity(f.Key(1)); err == nil {
					cl.Matches = append(cl.Matches, netcfg.MatchCommunityLiteral{Community: c})
				}
				in.warn(f, "from community must reference a named community, not a literal")
				continue
			}
			cl.Matches = append(cl.Matches, netcfg.MatchCommunityList{List: f.Key(1)})
		case "protocol":
			proto, err := netcfg.ParseRedistProtocol(f.Key(1))
			if err != nil {
				in.warn(f, "unknown protocol in from clause")
				continue
			}
			cl.Matches = append(cl.Matches, netcfg.MatchProtocol{Protocol: proto})
		case "route-filter":
			in.walkRouteFilter(cl, f)
		case "as-path":
			cl.Matches = append(cl.Matches, netcfg.MatchASPathRegex{Regex: f.Key(1)})
		default:
			in.warn(f, "unsupported from condition")
		}
	}
}

func (in *interp) walkRouteFilter(cl *netcfg.PolicyClause, f *Node) {
	// route-filter P exact | orlonger | upto /N | prefix-length-range /a-/b
	p, err := netcfg.ParsePrefix(f.Key(1))
	if err != nil {
		in.warn(f, "invalid route-filter prefix")
		return
	}
	switch f.Key(2) {
	case "exact":
		cl.Matches = append(cl.Matches, netcfg.NewMatchRouteFilterExact(p))
	case "orlonger":
		cl.Matches = append(cl.Matches, netcfg.NewMatchRouteFilterOrLonger(p))
	case "upto":
		n, ok := parseSlashLen(f.Key(3))
		if !ok {
			in.warn(f, "route-filter upto expects /N")
			return
		}
		cl.Matches = append(cl.Matches, netcfg.MatchRouteFilter{Prefix: p, MinLen: p.Len, MaxLen: n})
	case "prefix-length-range":
		lo, hi, ok := parseLenRange(f.Key(3))
		if !ok {
			in.warn(f, "route-filter prefix-length-range expects /a-/b")
			return
		}
		cl.Matches = append(cl.Matches, netcfg.MatchRouteFilter{Prefix: p, MinLen: lo, MaxLen: hi})
	default:
		in.warn(f, "unsupported route-filter modifier")
	}
}

func parseSlashLen(s string) (int, bool) {
	if !strings.HasPrefix(s, "/") {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 32 {
		return 0, false
	}
	return n, true
}

func parseLenRange(s string) (lo, hi int, ok bool) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	lo, ok1 := parseSlashLen(parts[0])
	hi, ok2 := parseSlashLen(parts[1])
	if !ok1 || !ok2 || hi < lo {
		return 0, 0, false
	}
	return lo, hi, true
}

func (in *interp) applyThenKeys(cl *netcfg.PolicyClause, n *Node, keys []string) {
	if len(keys) == 0 {
		return
	}
	switch keys[0] {
	case "accept":
		cl.Action = netcfg.Permit
	case "reject":
		cl.Action = netcfg.Deny
	case "metric":
		if len(keys) != 2 {
			in.warn(n, "metric expects a value")
			return
		}
		v, err := strconv.Atoi(keys[1])
		if err != nil {
			in.warn(n, "invalid metric value")
			return
		}
		cl.Sets = append(cl.Sets, netcfg.SetMED{MED: v})
	case "local-preference":
		if len(keys) != 2 {
			in.warn(n, "local-preference expects a value")
			return
		}
		v, err := strconv.Atoi(keys[1])
		if err != nil {
			in.warn(n, "invalid local-preference value")
			return
		}
		cl.Sets = append(cl.Sets, netcfg.SetLocalPref{Pref: v})
	case "community":
		in.applyThenCommunity(cl, n, keys)
	case "next-hop":
		if len(keys) != 2 {
			in.warn(n, "next-hop expects an address")
			return
		}
		hop, err := netcfg.ParseIP(keys[1])
		if err != nil {
			in.warn(n, "invalid next-hop address")
			return
		}
		cl.Sets = append(cl.Sets, netcfg.SetNextHop{Hop: hop})
	default:
		in.warn(n, fmt.Sprintf("unsupported then action %q", keys[0]))
	}
}

func (in *interp) applyThenCommunity(cl *netcfg.PolicyClause, n *Node, keys []string) {
	// community add|set NAME
	if len(keys) != 3 {
		in.warn(n, "community action expects 'community add|set <name>'")
		return
	}
	additive := false
	switch keys[1] {
	case "add":
		additive = true
	case "set":
	default:
		in.warn(n, "unsupported community action (expected add or set)")
		return
	}
	comm := in.dev.CommunityLists[keys[2]]
	if comm == nil {
		in.warn(n, "community "+keys[2]+" is not defined")
		return
	}
	var members []netcfg.Community
	for _, e := range comm.Entries {
		members = append(members, e.Community)
	}
	cl.Sets = append(cl.Sets, netcfg.SetCommunity{Communities: members, Additive: additive})
}
