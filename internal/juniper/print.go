package juniper

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netcfg"
)

// Print renders a device in Junos syntax. Output is deterministic.
//
// Redistribution entries (netcfg.BGP.Redistribute) are intentionally not
// printable in Junos: Juniper expresses redistribution through the same
// export policies that control BGP routes (paper §3.2, "Different
// Redistribution behavior into BGP"), so the translator must fold them into
// policy terms before printing.
func Print(d *netcfg.Device) string {
	var b strings.Builder
	if d.Hostname != "" {
		b.WriteString("system {\n")
		fmt.Fprintf(&b, "    host-name %s;\n", d.Hostname)
		b.WriteString("}\n")
	}
	printInterfaces(&b, d)
	printRoutingOptions(&b, d)
	printProtocols(&b, d)
	printPolicyOptions(&b, d)
	return b.String()
}

// SplitIfcName splits a logical interface name ("ge-0/0/0.0") into its
// physical name and unit. Names without a dot default to unit 0.
func SplitIfcName(name string) (phys, unit string) {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, "0"
}

func printInterfaces(b *strings.Builder, d *netcfg.Device) {
	if len(d.Interfaces) == 0 {
		return
	}
	b.WriteString("interfaces {\n")
	// Group logical units under their physical interface, preserving the
	// device's interface order for the physical names.
	var physOrder []string
	units := map[string][]*netcfg.Interface{}
	for _, ifc := range d.Interfaces {
		phys, _ := SplitIfcName(ifc.Name)
		if _, ok := units[phys]; !ok {
			physOrder = append(physOrder, phys)
		}
		units[phys] = append(units[phys], ifc)
	}
	for _, phys := range physOrder {
		fmt.Fprintf(b, "    %s {\n", phys)
		for _, ifc := range units[phys] {
			_, unit := SplitIfcName(ifc.Name)
			fmt.Fprintf(b, "        unit %s {\n", unit)
			if ifc.Description != "" {
				fmt.Fprintf(b, "            description \"%s\";\n", ifc.Description)
			}
			if ifc.HasAddress {
				fmt.Fprintf(b, "            family inet {\n")
				fmt.Fprintf(b, "                address %s/%d;\n", netcfg.FormatIP(ifc.Address.Addr), ifc.Address.Len)
				fmt.Fprintf(b, "            }\n")
			}
			b.WriteString("        }\n")
		}
		b.WriteString("    }\n")
	}
	b.WriteString("}\n")
}

func printRoutingOptions(b *strings.Builder, d *netcfg.Device) {
	hasRO := len(d.StaticRoutes) > 0 || (d.BGP != nil && (d.BGP.RouterID != 0 || d.BGP.ASN != 0))
	if !hasRO {
		return
	}
	b.WriteString("routing-options {\n")
	if d.BGP != nil && d.BGP.RouterID != 0 {
		fmt.Fprintf(b, "    router-id %s;\n", netcfg.FormatIP(d.BGP.RouterID))
	}
	if d.BGP != nil && d.BGP.ASN != 0 {
		fmt.Fprintf(b, "    autonomous-system %d;\n", d.BGP.ASN)
	}
	if len(d.StaticRoutes) > 0 {
		b.WriteString("    static {\n")
		for _, r := range d.StaticRoutes {
			fmt.Fprintf(b, "        route %s next-hop %s;\n", r.Prefix, netcfg.FormatIP(r.NextHop))
		}
		b.WriteString("    }\n")
	}
	b.WriteString("}\n")
}

func printProtocols(b *strings.Builder, d *netcfg.Device) {
	hasBGP := d.BGP != nil && len(d.BGP.Neighbors) > 0
	hasOSPF := hasOSPFInterfaces(d)
	if !hasBGP && !hasOSPF {
		return
	}
	b.WriteString("protocols {\n")
	if hasBGP {
		b.WriteString("    bgp {\n")
		b.WriteString("        group ebgp {\n")
		b.WriteString("            type external;\n")
		for _, n := range d.BGP.Neighbors {
			fmt.Fprintf(b, "            neighbor %s {\n", netcfg.FormatIP(n.Addr))
			if n.Description != "" {
				fmt.Fprintf(b, "                description \"%s\";\n", n.Description)
			}
			if n.LocalAS != 0 {
				fmt.Fprintf(b, "                local-as %d;\n", n.LocalAS)
			}
			if n.RemoteAS != 0 {
				fmt.Fprintf(b, "                peer-as %d;\n", n.RemoteAS)
			}
			if n.ImportPolicy != "" {
				fmt.Fprintf(b, "                import %s;\n", n.ImportPolicy)
			}
			if n.ExportPolicy != "" {
				fmt.Fprintf(b, "                export %s;\n", n.ExportPolicy)
			}
			b.WriteString("            }\n")
		}
		b.WriteString("        }\n")
		b.WriteString("    }\n")
	}
	if hasOSPF {
		printOSPF(b, d)
	}
	b.WriteString("}\n")
}

func hasOSPFInterfaces(d *netcfg.Device) bool {
	for _, ifc := range d.Interfaces {
		if ifc.OSPFArea >= 0 {
			return true
		}
	}
	return false
}

func printOSPF(b *strings.Builder, d *netcfg.Device) {
	areas := map[int64][]*netcfg.Interface{}
	var areaOrder []int64
	for _, ifc := range d.Interfaces {
		if ifc.OSPFArea < 0 {
			continue
		}
		if _, ok := areas[ifc.OSPFArea]; !ok {
			areaOrder = append(areaOrder, ifc.OSPFArea)
		}
		areas[ifc.OSPFArea] = append(areas[ifc.OSPFArea], ifc)
	}
	sort.Slice(areaOrder, func(i, j int) bool { return areaOrder[i] < areaOrder[j] })
	b.WriteString("    ospf {\n")
	for _, area := range areaOrder {
		fmt.Fprintf(b, "        area %s {\n", netcfg.FormatIP(uint32(area)))
		for _, ifc := range areas[area] {
			fmt.Fprintf(b, "            interface %s {\n", ifc.Name)
			if ifc.OSPFPassive {
				b.WriteString("                passive;\n")
			}
			if ifc.OSPFCost > 0 {
				fmt.Fprintf(b, "                metric %d;\n", ifc.OSPFCost)
			}
			b.WriteString("            }\n")
		}
		b.WriteString("        }\n")
	}
	b.WriteString("    }\n")
}

func printPolicyOptions(b *strings.Builder, d *netcfg.Device) {
	if len(d.PrefixLists) == 0 && len(d.CommunityLists) == 0 && len(d.RoutePolicies) == 0 {
		return
	}
	b.WriteString("policy-options {\n")
	for _, name := range d.PrefixListNames() {
		pl := d.PrefixLists[name]
		fmt.Fprintf(b, "    prefix-list %s {\n", name)
		for _, e := range pl.Entries {
			fmt.Fprintf(b, "        %s;\n", e.Prefix)
		}
		b.WriteString("    }\n")
	}
	comms := newCommunityNamer(d)
	for _, name := range d.PolicyNames() {
		printPolicyStatement(b, d, d.RoutePolicies[name], comms)
	}
	for _, name := range comms.names() {
		fmt.Fprintf(b, "    community %s members %s;\n", name, strings.Join(comms.members(name), " "))
	}
	b.WriteString("}\n")
}

// communityNamer maps sets of community values to named Junos communities,
// reusing the device's existing definitions and synthesizing names for
// literal sets that have none.
type communityNamer struct {
	dev    *netcfg.Device
	synth  map[string][]string // name -> members
	bySig  map[string]string   // signature -> name
	listed []string
}

func newCommunityNamer(d *netcfg.Device) *communityNamer {
	cn := &communityNamer{dev: d, synth: map[string][]string{}, bySig: map[string]string{}}
	for _, name := range d.CommunityListNames() {
		cl := d.CommunityLists[name]
		var members []string
		for _, e := range cl.Entries {
			if e.Action == netcfg.Permit {
				members = append(members, e.Community.String())
			}
		}
		sig := strings.Join(members, ",")
		if _, ok := cn.bySig[sig]; !ok {
			cn.bySig[sig] = name
		}
		cn.synth[name] = members
		cn.listed = append(cn.listed, name)
	}
	return cn
}

func (cn *communityNamer) nameFor(comms []netcfg.Community) string {
	members := make([]string, len(comms))
	for i, c := range comms {
		members[i] = c.String()
	}
	sig := strings.Join(members, ",")
	if name, ok := cn.bySig[sig]; ok {
		return name
	}
	name := "COMM_" + strings.ReplaceAll(strings.ReplaceAll(sig, ":", "_"), ",", "_")
	cn.bySig[sig] = name
	cn.synth[name] = members
	cn.listed = append(cn.listed, name)
	return name
}

func (cn *communityNamer) names() []string {
	out := append([]string(nil), cn.listed...)
	sort.Strings(out)
	return out
}

func (cn *communityNamer) members(name string) []string { return cn.synth[name] }

func printPolicyStatement(b *strings.Builder, d *netcfg.Device, rp *netcfg.RoutePolicy, comms *communityNamer) {
	fmt.Fprintf(b, "    policy-statement %s {\n", rp.Name)
	for _, cl := range rp.Clauses {
		fmt.Fprintf(b, "        term %d {\n", cl.Seq)
		if len(cl.Matches) > 0 {
			b.WriteString("            from {\n")
			for _, m := range cl.Matches {
				switch m := m.(type) {
				case netcfg.MatchPrefixList:
					fmt.Fprintf(b, "                prefix-list %s;\n", m.List)
				case netcfg.MatchCommunityList:
					fmt.Fprintf(b, "                community %s;\n", m.List)
				case netcfg.MatchCommunityLiteral:
					fmt.Fprintf(b, "                community %s;\n", m.Community)
				case netcfg.MatchProtocol:
					fmt.Fprintf(b, "                protocol %s;\n", m.Protocol)
				case netcfg.MatchRouteFilter:
					printRouteFilter(b, m)
				case netcfg.MatchASPathRegex:
					fmt.Fprintf(b, "                as-path %q;\n", m.Regex)
				}
			}
			b.WriteString("            }\n")
		}
		b.WriteString("            then {\n")
		for _, s := range cl.Sets {
			switch s := s.(type) {
			case netcfg.SetMED:
				fmt.Fprintf(b, "                metric %d;\n", s.MED)
			case netcfg.SetLocalPref:
				fmt.Fprintf(b, "                local-preference %d;\n", s.Pref)
			case netcfg.SetCommunity:
				verb := "set"
				if s.Additive {
					verb = "add"
				}
				fmt.Fprintf(b, "                community %s %s;\n", verb, comms.nameFor(s.Communities))
			case netcfg.SetNextHop:
				fmt.Fprintf(b, "                next-hop %s;\n", netcfg.FormatIP(s.Hop))
			}
		}
		if cl.Action == netcfg.Permit {
			b.WriteString("                accept;\n")
		} else {
			b.WriteString("                reject;\n")
		}
		b.WriteString("            }\n")
		b.WriteString("        }\n")
	}
	b.WriteString("    }\n")
}

func printRouteFilter(b *strings.Builder, m netcfg.MatchRouteFilter) {
	switch {
	case m.MinLen == m.Prefix.Len && m.MaxLen == m.Prefix.Len:
		fmt.Fprintf(b, "                route-filter %s exact;\n", m.Prefix)
	case m.MinLen == m.Prefix.Len && m.MaxLen == 32:
		fmt.Fprintf(b, "                route-filter %s orlonger;\n", m.Prefix)
	case m.MinLen == m.Prefix.Len:
		fmt.Fprintf(b, "                route-filter %s upto /%d;\n", m.Prefix, m.MaxLen)
	default:
		fmt.Fprintf(b, "                route-filter %s prefix-length-range /%d-/%d;\n", m.Prefix, m.MinLen, m.MaxLen)
	}
}
