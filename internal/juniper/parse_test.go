package juniper

import (
	"strings"
	"testing"

	"repro/internal/netcfg"
)

const sampleJunos = `system {
    host-name border1;
}
interfaces {
    ge-0/0/0 {
        unit 0 {
            description "LAN";
            family inet {
                address 1.2.3.1/24;
            }
        }
    }
    lo0 {
        unit 0 {
            family inet {
                address 1.1.1.1/32;
            }
        }
    }
}
routing-options {
    router-id 1.1.1.1;
    autonomous-system 65000;
    static {
        route 7.0.0.0/8 next-hop 2.3.4.5;
    }
}
protocols {
    bgp {
        group ebgp {
            type external;
            neighbor 2.3.4.5 {
                description "PROVIDER";
                peer-as 65001;
                import from_provider;
                export to_provider;
            }
        }
    }
    ospf {
        area 0.0.0.0 {
            interface lo0.0 {
                passive;
                metric 1;
            }
            interface ge-0/0/0.0 {
                metric 5;
            }
        }
    }
}
policy-options {
    prefix-list default-route {
        0.0.0.0/0;
    }
    policy-statement from_provider {
        term 10 {
            from {
                prefix-list default-route;
            }
            then {
                local-preference 200;
                accept;
            }
        }
        term 20 {
            from {
                community PROV;
            }
            then {
                community add MINE;
                accept;
            }
        }
        term 100 {
            then {
                reject;
            }
        }
    }
    policy-statement to_provider {
        term 10 {
            from {
                protocol bgp;
                route-filter 1.2.3.0/24 prefix-length-range /24-/32;
            }
            then {
                metric 50;
                accept;
            }
        }
        term 20 {
            then {
                reject;
            }
        }
    }
    community MINE members 65000:300;
    community PROV members 65001:100;
}
`

func TestParseSampleJunosClean(t *testing.T) {
	dev, warns := Parse(sampleJunos)
	if len(warns) != 0 {
		t.Fatalf("warnings: %v", warns)
	}
	if dev.Hostname != "border1" {
		t.Errorf("hostname = %q", dev.Hostname)
	}
	ge := dev.Interface("ge-0/0/0.0")
	if ge == nil || !ge.HasAddress || ge.Description != "LAN" {
		t.Fatalf("ge-0/0/0.0 = %+v", ge)
	}
	if ge.OSPFArea != 0 || ge.OSPFCost != 5 {
		t.Errorf("ge OSPF = area %d cost %d", ge.OSPFArea, ge.OSPFCost)
	}
	lo := dev.Interface("lo0.0")
	if lo == nil || !lo.OSPFPassive || lo.OSPFCost != 1 {
		t.Fatalf("lo0.0 = %+v", lo)
	}
	if dev.BGP == nil || dev.BGP.ASN != 65000 || netcfg.FormatIP(dev.BGP.RouterID) != "1.1.1.1" {
		t.Fatalf("BGP = %+v", dev.BGP)
	}
	nbr := dev.BGP.Neighbors[0]
	if nbr.RemoteAS != 65001 || nbr.ImportPolicy != "from_provider" || nbr.ExportPolicy != "to_provider" {
		t.Fatalf("neighbor = %+v", nbr)
	}
	if len(dev.StaticRoutes) != 1 || dev.StaticRoutes[0].Prefix.String() != "7.0.0.0/8" {
		t.Errorf("static = %+v", dev.StaticRoutes)
	}
	fp := dev.RoutePolicies["from_provider"]
	if fp == nil || len(fp.Clauses) != 3 {
		t.Fatalf("from_provider = %+v", fp)
	}
	// Term 20 must have resolved the named community both in match and set.
	var gotMatch, gotSet bool
	for _, m := range fp.Clauses[1].Matches {
		if mc, ok := m.(netcfg.MatchCommunityList); ok && mc.List == "PROV" {
			gotMatch = true
		}
	}
	for _, s := range fp.Clauses[1].Sets {
		if sc, ok := s.(netcfg.SetCommunity); ok && sc.Additive &&
			len(sc.Communities) == 1 && sc.Communities[0] == netcfg.MustCommunity("65000:300") {
			gotSet = true
		}
	}
	if !gotMatch || !gotSet {
		t.Errorf("term 20 match/set resolution: match=%v set=%v", gotMatch, gotSet)
	}
	tp := dev.RoutePolicies["to_provider"]
	var rf *netcfg.MatchRouteFilter
	var proto bool
	for _, m := range tp.Clauses[0].Matches {
		switch m := m.(type) {
		case netcfg.MatchRouteFilter:
			rf = &m
		case netcfg.MatchProtocol:
			proto = m.Protocol == netcfg.RedistBGP
		}
	}
	if rf == nil || rf.MinLen != 24 || rf.MaxLen != 32 || !proto {
		t.Fatalf("to_provider term 10 = %+v", tp.Clauses[0])
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	dev, warns := Parse(sampleJunos)
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	text := Print(dev)
	dev2, warns2 := Parse(text)
	if len(warns2) != 0 {
		t.Fatalf("reparse warnings: %v\n%s", warns2, text)
	}
	if Print(dev2) != text {
		t.Error("print not idempotent")
	}
}

func TestInvalidPrefixListEntryWarns(t *testing.T) {
	// The paper's invalid output: prefix-list with a length range (§3.2).
	cfg := "policy-options {\n    prefix-list our-networks {\n        1.2.3.0/24-32;\n    }\n}\n"
	warns := Check(cfg)
	if len(warns) != 1 {
		t.Fatalf("warnings = %v", warns)
	}
	w := warns[0]
	if !strings.Contains(w.Text, "prefix-list our-networks 1.2.3.0/24-32") {
		t.Errorf("warning text %q should quote the Table 1 form", w.Text)
	}
	if !strings.Contains(w.Reason, "route-filter") {
		t.Errorf("warning should point at route-filter, got %q", w.Reason)
	}
}

func TestMissingLocalASWarns(t *testing.T) {
	cfg := `protocols {
    bgp {
        group ebgp {
            neighbor 2.3.4.5 {
                peer-as 65001;
            }
        }
    }
}
`
	warns := Check(cfg)
	found := false
	for _, w := range warns {
		if strings.Contains(w.Reason, "no local AS") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected local-AS warning, got %v", warns)
	}
}

func TestGroupLevelAttributesInherit(t *testing.T) {
	cfg := `protocols {
    bgp {
        group ebgp {
            peer-as 7;
            local-as 1;
            export POL;
            neighbor 10.0.0.1;
            neighbor 10.0.0.2 {
                peer-as 8;
            }
        }
    }
}
policy-options {
    policy-statement POL {
        term 10 {
            then {
                accept;
            }
        }
    }
}
`
	dev, warns := Parse(cfg)
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	n1 := dev.BGP.Neighbors[0]
	if n1.RemoteAS != 7 || n1.LocalAS != 1 || n1.ExportPolicy != "POL" {
		t.Errorf("n1 = %+v", n1)
	}
	n2 := dev.BGP.Neighbors[1]
	if n2.RemoteAS != 8 || n2.LocalAS != 1 {
		t.Errorf("n2 = %+v (override + inherit)", n2)
	}
}

func TestRouteFilterModifiers(t *testing.T) {
	cfg := `policy-options {
    policy-statement P {
        term 10 {
            from {
                route-filter 10.0.0.0/8 exact;
                route-filter 10.0.0.0/8 orlonger;
                route-filter 10.0.0.0/8 upto /16;
                route-filter 10.0.0.0/8 prefix-length-range /12-/20;
            }
            then {
                accept;
            }
        }
    }
}
`
	dev, warns := Parse(cfg)
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	ms := dev.RoutePolicies["P"].Clauses[0].Matches
	want := [][2]int{{8, 8}, {8, 32}, {8, 16}, {12, 20}}
	if len(ms) != 4 {
		t.Fatalf("matches = %d", len(ms))
	}
	for i, m := range ms {
		rf := m.(netcfg.MatchRouteFilter)
		if rf.MinLen != want[i][0] || rf.MaxLen != want[i][1] {
			t.Errorf("filter %d = /%d-/%d, want /%d-/%d",
				i, rf.MinLen, rf.MaxLen, want[i][0], want[i][1])
		}
	}
}

func TestUnknownStatementsWarnButParseContinues(t *testing.T) {
	cfg := `system {
    host-name r1;
    time-zone UTC;
}
frobnicate {
    x;
}
`
	dev, warns := Parse(cfg)
	if dev.Hostname != "r1" {
		t.Error("parse should continue past unknown statements")
	}
	if len(warns) != 2 {
		t.Errorf("warnings = %v, want 2", warns)
	}
}

// TestPrintParseFixpoint mirrors the Cisco property: the Junos printer
// emits only what the Junos parser accepts, so one round trip is a
// fixpoint even for garbage input.
func TestPrintParseFixpoint(t *testing.T) {
	inputs := []string{
		sampleJunos,
		"",
		"garbage { nested { x; } }",
		"interfaces { ge-0/0/0 { unit 0 { family inet { address 1.2.3.4/31; } } } }",
	}
	for _, in := range inputs {
		dev1, _ := Parse(in)
		text1 := Print(dev1)
		dev2, _ := Parse(text1)
		if Print(dev2) != text1 {
			t.Errorf("not a fixpoint for input %.40q", in)
		}
	}
}
