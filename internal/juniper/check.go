package juniper

import (
	"repro/internal/netcfg"
)

// Check parses the text and returns all syntax and lint warnings, the
// Batfish-style "parse warnings" feed for the VPP loop's syntax stage.
func Check(text string) []netcfg.ParseWarning {
	_, _, checkWarns := ParseAndCheck(text)
	return checkWarns
}

// ParseAndCheck parses the text once and returns the device together with
// both warning feeds: the parser's own warnings and the full Check output
// (parse plus lint). Callers that need the IR and the syntax verdict for
// the same configuration revision — the verification cache in particular —
// avoid the second parse a separate Check call would cost.
func ParseAndCheck(text string) (dev *netcfg.Device, parseWarns, checkWarns []netcfg.ParseWarning) {
	dev, parseWarns = Parse(text)
	lint := Lint(dev)
	checkWarns = make([]netcfg.ParseWarning, 0, len(parseWarns)+len(lint))
	checkWarns = append(append(checkWarns, parseWarns...), lint...)
	return dev, parseWarns, checkWarns
}

// Lint reports IR-level problems: undefined list references, neighbors
// with no local AS (the paper's "Missing BGP local-as attribute" parse
// warning), and literal-community matches.
func Lint(d *netcfg.Device) []netcfg.ParseWarning {
	var warns []netcfg.ParseWarning
	for _, name := range d.PolicyNames() {
		rp := d.RoutePolicies[name]
		for _, cl := range rp.Clauses {
			for _, m := range cl.Matches {
				switch m := m.(type) {
				case netcfg.MatchCommunityLiteral:
					warns = append(warns, netcfg.ParseWarning{
						Text:   "policy-statement " + name + " / from community " + m.Community.String(),
						Reason: "from community must reference a named community",
					})
				case netcfg.MatchCommunityList:
					if d.CommunityLists[m.List] == nil {
						warns = append(warns, netcfg.ParseWarning{
							Text:   "policy-statement " + name + " / from community " + m.List,
							Reason: "community " + m.List + " is not defined",
						})
					}
				case netcfg.MatchPrefixList:
					if d.PrefixLists[m.List] == nil {
						warns = append(warns, netcfg.ParseWarning{
							Text:   "policy-statement " + name + " / from prefix-list " + m.List,
							Reason: "prefix-list " + m.List + " is not defined",
						})
					}
				}
			}
		}
	}
	if d.BGP != nil {
		for _, n := range d.BGP.Neighbors {
			if n.LocalAS == 0 && d.BGP.ASN == 0 {
				warns = append(warns, netcfg.ParseWarning{
					Text: "neighbor " + netcfg.FormatIP(n.Addr),
					Reason: "BGP neighbor has no local AS: declare 'routing-options autonomous-system' " +
						"or a 'local-as' attribute",
				})
			}
			if n.RemoteAS == 0 {
				warns = append(warns, netcfg.ParseWarning{
					Text:   "neighbor " + netcfg.FormatIP(n.Addr),
					Reason: "BGP neighbor has no peer-as",
				})
			}
			for _, pol := range []string{n.ImportPolicy, n.ExportPolicy} {
				if pol != "" && d.RoutePolicies[pol] == nil {
					warns = append(warns, netcfg.ParseWarning{
						Text:   "neighbor " + netcfg.FormatIP(n.Addr) + " policy " + pol,
						Reason: "policy-statement " + pol + " is not defined",
					})
				}
			}
		}
	}
	return warns
}
