package juniper

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTreeBasics(t *testing.T) {
	tree, warns := ParseTree("a b {\n  c d;\n  e {\n    f;\n  }\n}\n")
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	if len(tree.Children) != 1 {
		t.Fatalf("root children = %d", len(tree.Children))
	}
	ab := tree.Children[0]
	if ab.Text() != "a b" || !ab.Block {
		t.Fatalf("ab = %+v", ab)
	}
	if cd := ab.Child("c"); cd == nil || cd.Key(1) != "d" || cd.Block {
		t.Fatalf("cd = %+v", cd)
	}
	if e := ab.Child("e"); e == nil || !e.Block || len(e.Children) != 1 {
		t.Fatalf("e = %+v", e)
	}
}

func TestParseTreeQuotedStrings(t *testing.T) {
	tree, warns := ParseTree(`a { description "hello world { } ;"; }`)
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	d := tree.Children[0].Child("description")
	if d == nil || d.Key(1) != "hello world { } ;" {
		t.Fatalf("d = %+v", d)
	}
}

func TestParseTreeComments(t *testing.T) {
	tree, warns := ParseTree("# a comment\na {\n  b; # trailing\n}\n")
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	if len(tree.Children) != 1 || tree.Children[0].Child("b") == nil {
		t.Fatal("comment handling broke structure")
	}
}

func TestParseTreeMissingSemicolonWarns(t *testing.T) {
	_, warns := ParseTree("a {\n  b c\n}\n")
	if len(warns) != 1 || !strings.Contains(warns[0].Reason, "missing ';'") {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestParseTreeUnbalancedBraces(t *testing.T) {
	_, warns := ParseTree("a {\n  b;\n")
	if len(warns) != 1 || !strings.Contains(warns[0].Reason, "unclosed block") {
		t.Fatalf("warnings = %v", warns)
	}
	_, warns = ParseTree("a;\n}\n")
	if len(warns) != 1 || !strings.Contains(warns[0].Reason, "unbalanced") {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestParseTreeUnterminatedString(t *testing.T) {
	_, warns := ParseTree("a \"oops\n;\n")
	found := false
	for _, w := range warns {
		if strings.Contains(w.Reason, "unterminated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestParseTreeLineNumbers(t *testing.T) {
	tree, _ := ParseTree("\n\na {\n  b;\n}\n")
	a := tree.Children[0]
	if a.Line != 3 {
		t.Errorf("a at line %d, want 3", a.Line)
	}
	if b := a.Child("b"); b.Line != 4 {
		t.Errorf("b at line %d, want 4", b.Line)
	}
}

// TestParseTreeNeverPanics feeds arbitrary text to the tree parser.
func TestParseTreeNeverPanics(t *testing.T) {
	f := func(s string) bool {
		tree, _ := ParseTree(s)
		return tree != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanics feeds arbitrary text to the full parser.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		dev, _ := Parse(s)
		return dev != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
