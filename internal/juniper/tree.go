// Package juniper parses and prints the Junos configuration dialect used in
// the paper's translation use case: interfaces, routing-options, protocols
// bgp/ospf, and policy-options (prefix-lists, communities, and
// policy-statements with route-filters).
//
// Parsing is two-phase: a brace-tree parser turns the text into a generic
// statement tree (reporting unbalanced braces, missing semicolons, and
// malformed tokens as netcfg.ParseWarnings), and an interpreter walks the
// tree into the vendor-neutral IR, warning on unknown statements — e.g. the
// invalid "1.2.3.0/24-32" prefix-list entry GPT-4 produces in §3.2.
package juniper

import (
	"strings"

	"repro/internal/netcfg"
)

// Node is one statement in the Junos configuration tree. A leaf statement
// "a b c;" has Keys=[a b c] and no children; a block "a b { ... }" has
// Keys=[a b] and children.
type Node struct {
	Keys     []string
	Children []*Node
	Line     int
	Block    bool
}

// Key returns the i'th key word, or "".
func (n *Node) Key(i int) string {
	if i < len(n.Keys) {
		return n.Keys[i]
	}
	return ""
}

// Text reconstructs the statement head for warnings.
func (n *Node) Text() string { return strings.Join(n.Keys, " ") }

// Child returns the first child block/statement whose first key matches.
func (n *Node) Child(key string) *Node {
	for _, c := range n.Children {
		if c.Key(0) == key {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all children whose first key matches.
func (n *Node) ChildrenNamed(key string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Key(0) == key {
			out = append(out, c)
		}
	}
	return out
}

type token struct {
	text string
	line int
	kind tokenKind
}

type tokenKind int

const (
	tokWord tokenKind = iota
	tokOpen
	tokClose
	tokSemi
)

func lex(text string) ([]token, []netcfg.ParseWarning) {
	var toks []token
	var warns []netcfg.ParseWarning
	line := 1
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(text) && text[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{"{", line, tokOpen})
			i++
		case c == '}':
			toks = append(toks, token{"}", line, tokClose})
			i++
		case c == ';':
			toks = append(toks, token{";", line, tokSemi})
			i++
		case c == '"':
			j := i + 1
			for j < len(text) && text[j] != '"' && text[j] != '\n' {
				j++
			}
			if j >= len(text) || text[j] != '"' {
				warns = append(warns, netcfg.ParseWarning{
					Line: line, Text: text[i:min(j, len(text))], Reason: "unterminated string",
				})
				i = j
				continue
			}
			toks = append(toks, token{text[i+1 : j], line, tokWord})
			i = j + 1
		default:
			j := i
			for j < len(text) && !strings.ContainsRune(" \t\r\n{};#\"", rune(text[j])) {
				j++
			}
			toks = append(toks, token{text[i:j], line, tokWord})
			i = j
		}
	}
	return toks, warns
}

// ParseTree parses Junos text into a statement tree, reporting structural
// syntax errors (unbalanced braces, statements missing semicolons) as
// warnings. It always returns a usable (possibly partial) tree.
func ParseTree(text string) (*Node, []netcfg.ParseWarning) {
	toks, warns := lex(text)
	root := &Node{Block: true}
	stack := []*Node{root}
	var words []token

	flushLeaf := func(endLine int, terminated bool) {
		if len(words) == 0 {
			return
		}
		keys := make([]string, len(words))
		for i, w := range words {
			keys[i] = w.text
		}
		n := &Node{Keys: keys, Line: words[0].line}
		parent := stack[len(stack)-1]
		parent.Children = append(parent.Children, n)
		if !terminated {
			warns = append(warns, netcfg.ParseWarning{
				Line: endLine, Text: strings.Join(keys, " "), Reason: "statement missing ';'",
			})
		}
		words = nil
	}

	for _, t := range toks {
		switch t.kind {
		case tokWord:
			words = append(words, t)
		case tokSemi:
			if len(words) == 0 {
				warns = append(warns, netcfg.ParseWarning{Line: t.line, Text: ";", Reason: "empty statement"})
				continue
			}
			flushLeaf(t.line, true)
		case tokOpen:
			if len(words) == 0 {
				warns = append(warns, netcfg.ParseWarning{Line: t.line, Text: "{", Reason: "block with no name"})
				words = append(words, token{"_anonymous", t.line, tokWord})
			}
			keys := make([]string, len(words))
			for i, w := range words {
				keys[i] = w.text
			}
			n := &Node{Keys: keys, Line: words[0].line, Block: true}
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, n)
			stack = append(stack, n)
			words = nil
		case tokClose:
			flushLeaf(t.line, false)
			if len(stack) == 1 {
				warns = append(warns, netcfg.ParseWarning{Line: t.line, Text: "}", Reason: "unbalanced '}'"})
				continue
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(words) > 0 {
		flushLeaf(words[len(words)-1].line, false)
	}
	if len(stack) > 1 {
		warns = append(warns, netcfg.ParseWarning{
			Line:   stack[len(stack)-1].Line,
			Text:   stack[len(stack)-1].Text(),
			Reason: "unclosed block (missing '}')",
		})
	}
	return root, warns
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
