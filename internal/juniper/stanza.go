package juniper

import (
	"strings"

	"repro/internal/netcfg"
)

// SplitStanzas segments a Junos configuration into top-level brace blocks
// (system, interfaces, routing-options, protocols), with policy-options
// split one level deeper so each policy-statement / prefix-list /
// community definition is its own addressable stanza. The split is purely
// textual and lossless — netcfg.JoinStanzas over the result reproduces the
// input byte for byte — which is what the delta wire protocol and the
// round-trip tests need. Unlike the Cisco splitter there is no fragment
// assembly: Junos parsing resolves cross-block references (policy "then
// community" names against community definitions) in a second pass, so
// incremental parse falls back to the whole parse and stanzas serve
// deltas and provenance only.
func SplitStanzas(text string) []netcfg.Stanza {
	if text == "" {
		return nil
	}
	lines := strings.SplitAfter(text, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}

	// Stanzas cover contiguous byte ranges of the input, so the split only
	// records each stanza's start offset and slices text at the end — no
	// per-line string accumulation.
	var out []netcfg.Stanza
	var starts []int
	cur := -1 // index in out of the open stanza, -1 before the first
	off := 0  // byte offset of the next line
	open := func(kind, name string, lineNo int) {
		out = append(out, netcfg.Stanza{Kind: kind, Name: name, Line: lineNo})
		starts = append(starts, off)
		cur = len(out) - 1
	}
	glue := func(lineNo int) {
		if cur < 0 {
			open("extra", "", lineNo)
		}
	}

	depth := 0
	inPolicyOptions := false
	for i, raw := range lines {
		lineNo := i + 1
		trimmed := strings.TrimSpace(raw)
		opens := strings.Count(raw, "{")
		closes := strings.Count(raw, "}")

		switch {
		case depth == 0:
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				glue(lineNo)
			} else {
				kind, name := classifyJunosHeader(trimmed)
				open(kind, name, lineNo)
				inPolicyOptions = kind == "policy-options" && opens > closes
			}
		case inPolicyOptions && depth == 1:
			switch {
			case trimmed == "}":
				open("policy-options-close", "", lineNo)
				inPolicyOptions = false
			case trimmed == "" || strings.HasPrefix(trimmed, "#"):
				glue(lineNo)
			default:
				kind, name := classifyJunosHeader(trimmed)
				open(kind, name, lineNo)
			}
		default:
			glue(lineNo)
		}
		depth += opens - closes
		if depth < 0 {
			depth = 0 // malformed text: stay lossless, labels may be off
		}
		off += len(raw)
	}
	for i := range out {
		end := len(text)
		if i+1 < len(out) {
			end = starts[i+1]
		}
		out[i].Text = text[starts[i]:end]
	}
	return out
}

// classifyJunosHeader labels a block or statement header line by its first
// token, with the second token as the identity when it is not punctuation.
func classifyJunosHeader(trimmed string) (kind, name string) {
	fields := strings.Fields(trimmed)
	if len(fields) == 0 {
		return "extra", ""
	}
	kind = strings.TrimSuffix(fields[0], ";")
	if len(fields) > 1 && fields[1] != "{" {
		name = strings.TrimSuffix(fields[1], ";")
	}
	return kind, name
}
