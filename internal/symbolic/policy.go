package symbolic

import (
	"sort"

	"repro/internal/netcfg"
)

// MatchSpace compiles a single match condition into the space of routes it
// matches. AS-path regex matches are over-approximated as "any route"
// (Campion treats them as opaque); the concrete evaluator remains exact.
func MatchSpace(m netcfg.Match, env netcfg.PolicyEnv) Space {
	switch m := m.(type) {
	case netcfg.MatchPrefixList:
		pl := env.LookupPrefixList(m.List)
		if pl == nil {
			return nil // undefined list matches nothing
		}
		ps := MatchedSet(pl)
		if ps.Empty() {
			return nil
		}
		return Space{{Prefixes: ps, Comms: TrueComm(), Protos: MaskAll}}
	case netcfg.MatchRouteFilter:
		a := AtomFromRouteFilter(m)
		if a.Empty() {
			return nil
		}
		return Space{{Prefixes: PrefixSet{a}, Comms: TrueComm(), Protos: MaskAll}}
	case netcfg.MatchCommunityList:
		cl := env.LookupCommunityList(m.List)
		if cl == nil {
			return nil
		}
		return communityListSpace(cl)
	case netcfg.MatchCommunityLiteral:
		return Space{{Prefixes: FullPrefixSet(), Comms: RequireComm(m.Community), Protos: MaskAll}}
	case netcfg.MatchProtocol:
		return Space{{Prefixes: FullPrefixSet(), Comms: TrueComm(), Protos: MaskOf(m.Protocol)}}
	case netcfg.MatchASPathRegex:
		return FullSpace() // over-approximation
	default:
		return nil
	}
}

// communityListSpace models first-match-wins community-list evaluation:
// a permit entry matches routes carrying its community that carry none of
// the previously denied communities.
func communityListSpace(cl *netcfg.CommunityList) Space {
	var out Space
	denied := TrueComm()
	for _, e := range cl.Entries {
		if e.Action == netcfg.Permit {
			cond, ok := RequireComm(e.Community).And(denied)
			if ok {
				out = append(out, Class{Prefixes: FullPrefixSet(), Comms: cond, Protos: MaskAll})
			}
		} else {
			cond, ok := denied.And(ForbidComm(e.Community))
			if !ok {
				break
			}
			denied = cond
		}
	}
	return out
}

// ClauseGuard computes the space matched by a clause: the intersection of
// all its match conditions (AND semantics). A clause with no matches
// matches everything.
func ClauseGuard(cl *netcfg.PolicyClause, env netcfg.PolicyEnv) Space {
	guard := FullSpace()
	for _, m := range cl.Matches {
		guard = guard.Intersect(MatchSpace(m, env))
		if guard.Empty() {
			return nil
		}
	}
	return guard
}

// Region is one guarded accept region of a policy: the set of input routes
// that reach a given permit clause, together with that clause's transforms.
type Region struct {
	Space     Space
	ClauseSeq int
	Sets      []netcfg.SetAction
}

// AcceptRegions compiles a policy into its accept regions: clause k's
// region is guard(k) minus the guards of all earlier clauses
// (first-match-wins). A nil policy accepts everything unchanged.
func AcceptRegions(p *netcfg.RoutePolicy, env netcfg.PolicyEnv) []Region {
	if p == nil {
		return []Region{{Space: FullSpace(), ClauseSeq: -1}}
	}
	remaining := FullSpace()
	var out []Region
	for _, cl := range p.Clauses {
		guard := ClauseGuard(cl, env)
		reached := remaining.Intersect(guard)
		if cl.Action == netcfg.Permit && !reached.Empty() {
			out = append(out, Region{Space: reached, ClauseSeq: cl.Seq, Sets: cl.Sets})
		}
		remaining = remaining.Subtract(guard)
		if remaining.Empty() {
			break
		}
	}
	return out
}

// AcceptSpace returns the union of all accept regions of a policy.
func AcceptSpace(p *netcfg.RoutePolicy, env netcfg.PolicyEnv) Space {
	var out Space
	for _, r := range AcceptRegions(p, env) {
		out = out.Union(r.Space)
	}
	return out
}

// Query is a SearchRoutePolicies-style question: does the policy produce
// Action on any route within the Input space?
type Query struct {
	Input  Space
	Action netcfg.Action
}

// SearchPolicy answers a query: it returns a concrete witness route on
// which the policy takes the queried action, or ok=false if no such route
// exists. This mirrors Batfish's searchRoutePolicies used as the paper's
// semantic verifier in §4.
func SearchPolicy(p *netcfg.RoutePolicy, env netcfg.PolicyEnv, q Query) (*netcfg.Route, bool) {
	accept := AcceptSpace(p, env)
	var target Space
	if q.Action == netcfg.Permit {
		target = q.Input.Intersect(accept)
	} else {
		target = q.Input.Subtract(accept)
	}
	return target.Sample()
}

// Universe generates a finite set of test routes that is discriminating
// for the given devices: one route per atom boundary of every prefix list,
// route filter, and BGP network statement, crossed with the community and
// protocol combinations referenced anywhere. Concrete differential testing
// over this universe is used where symbolic comparison of attribute
// transforms would be awkward (Campion's behaviour diff on transformed
// attributes).
func Universe(devs ...*netcfg.Device) []*netcfg.Route {
	prefixes := map[netcfg.Prefix]bool{}
	comms := map[netcfg.Community]bool{}

	addAtom := func(a Atom) {
		if a.Empty() {
			return
		}
		// Boundary lengths: shortest, longest, and one past each bound.
		lens := []int{a.MinLen, a.MaxLen, a.MinLen - 1, a.MaxLen + 1}
		for _, l := range lens {
			if l < 0 || l > 32 {
				continue
			}
			prefixes[netcfg.NewPrefix(a.Pattern.Addr, l)] = true
		}
		// A prefix outside the pattern (flip the last pattern bit).
		if a.Pattern.Len > 0 {
			flip := a.Pattern.Addr ^ (1 << uint(32-a.Pattern.Len))
			prefixes[netcfg.NewPrefix(flip, maxInt(a.MinLen, a.Pattern.Len))] = true
		}
	}

	for _, d := range devs {
		if d == nil {
			continue
		}
		for _, name := range d.PrefixListNames() {
			for _, e := range d.PrefixLists[name].Entries {
				addAtom(AtomFromEntry(e))
			}
		}
		for _, name := range d.CommunityListNames() {
			for _, e := range d.CommunityLists[name].Entries {
				comms[e.Community] = true
			}
		}
		for _, name := range d.PolicyNames() {
			for _, cl := range d.RoutePolicies[name].Clauses {
				for _, m := range cl.Matches {
					switch m := m.(type) {
					case netcfg.MatchRouteFilter:
						addAtom(AtomFromRouteFilter(m))
					case netcfg.MatchCommunityLiteral:
						comms[m.Community] = true
					}
				}
				for _, s := range cl.Sets {
					if sc, ok := s.(netcfg.SetCommunity); ok {
						for _, c := range sc.Communities {
							comms[c] = true
						}
					}
				}
			}
		}
		if d.BGP != nil {
			for _, n := range d.BGP.Networks {
				addAtom(NewAtom(n, n.Len, n.Len))
			}
		}
		for _, sr := range d.StaticRoutes {
			addAtom(NewAtom(sr.Prefix, sr.Prefix.Len, sr.Prefix.Len))
		}
	}
	if len(prefixes) == 0 {
		prefixes[netcfg.MustPrefix("10.0.0.0/8")] = true
	}

	sortedPrefixes := make([]netcfg.Prefix, 0, len(prefixes))
	for p := range prefixes {
		sortedPrefixes = append(sortedPrefixes, p)
	}
	sort.Slice(sortedPrefixes, func(i, j int) bool {
		if sortedPrefixes[i].Addr != sortedPrefixes[j].Addr {
			return sortedPrefixes[i].Addr < sortedPrefixes[j].Addr
		}
		return sortedPrefixes[i].Len < sortedPrefixes[j].Len
	})
	commList := sortedComms(comms)

	protos := []netcfg.RouteProtocol{
		netcfg.ProtoBGP, netcfg.ProtoOSPF, netcfg.ProtoConnected, netcfg.ProtoStatic,
	}
	var out []*netcfg.Route
	for _, p := range sortedPrefixes {
		for _, proto := range protos {
			// No communities.
			r := netcfg.NewRoute(p)
			r.Protocol = proto
			out = append(out, r)
			// Each single community (non-BGP routes don't carry communities).
			if proto != netcfg.ProtoBGP {
				continue
			}
			for _, c := range commList {
				rc := netcfg.NewRoute(p)
				rc.Protocol = proto
				rc.AddCommunity(c)
				out = append(out, rc)
			}
			// All communities at once (exercises AND-vs-OR semantics).
			if len(commList) > 1 {
				ra := netcfg.NewRoute(p)
				ra.Protocol = proto
				for _, c := range commList {
					ra.AddCommunity(c)
				}
				out = append(out, ra)
			}
		}
	}
	return out
}
