// Package symbolic implements the route-announcement analysis engine that
// powers the Campion substitute (policy-behaviour diffing, §3.1) and the
// Batfish "Search Route Policies" substitute (local-policy verification,
// §4.1): exact set algebra over announced prefixes (pattern plus
// prefix-length range), community constraints, and protocol constraints;
// compilation of route policies into guarded accept regions; and concrete
// counterexample extraction.
package symbolic

import (
	"fmt"
	"strings"

	"repro/internal/netcfg"
)

// Atom is a set of announced prefixes: every prefix p such that the first
// Pattern.Len bits of p equal Pattern and MinLen <= p.Len <= MaxLen.
// Invariant (enforced by constructors): MinLen >= Pattern.Len. An atom with
// MinLen > MaxLen is empty.
//
// This is exactly the semantics of a Cisco prefix-list entry with ge/le or
// a Juniper route-filter with prefix-length-range.
type Atom struct {
	Pattern netcfg.Prefix
	MinLen  int
	MaxLen  int
}

// NewAtom builds a normalized atom, clamping MinLen up to the pattern
// length and the bounds into [0,32].
func NewAtom(pattern netcfg.Prefix, minLen, maxLen int) Atom {
	if minLen < pattern.Len {
		minLen = pattern.Len
	}
	if maxLen > 32 {
		maxLen = 32
	}
	return Atom{Pattern: pattern, MinLen: minLen, MaxLen: maxLen}
}

// FullAtom matches every announced prefix.
func FullAtom() Atom { return Atom{Pattern: netcfg.Prefix{}, MinLen: 0, MaxLen: 32} }

// AtomFromEntry converts a prefix-list entry into the atom it matches.
func AtomFromEntry(e netcfg.PrefixListEntry) Atom {
	min, max := e.Bounds()
	return NewAtom(e.Prefix, min, max)
}

// AtomFromRouteFilter converts an inline route-filter match into an atom.
func AtomFromRouteFilter(m netcfg.MatchRouteFilter) Atom {
	return NewAtom(m.Prefix, m.MinLen, m.MaxLen)
}

// Empty reports whether the atom matches nothing.
func (a Atom) Empty() bool { return a.MinLen > a.MaxLen }

// Contains reports whether a concrete announced prefix is in the set.
func (a Atom) Contains(p netcfg.Prefix) bool {
	if p.Len < a.MinLen || p.Len > a.MaxLen {
		return false
	}
	return p.Addr&netcfg.Mask(a.Pattern.Len) == a.Pattern.Addr
}

// Sample returns a concrete prefix from the atom (the pattern address at
// the minimum matched length). Callers must check Empty first.
func (a Atom) Sample() netcfg.Prefix {
	return netcfg.NewPrefix(a.Pattern.Addr, a.MinLen)
}

// String implements fmt.Stringer.
func (a Atom) String() string {
	if a.Empty() {
		return "∅"
	}
	return fmt.Sprintf("%s[len %d-%d]", a.Pattern, a.MinLen, a.MaxLen)
}

// Intersect returns the intersection of two atoms (possibly empty).
func (a Atom) Intersect(b Atom) Atom {
	deep, shallow := a, b
	if b.Pattern.Len > a.Pattern.Len {
		deep, shallow = b, a
	}
	// Patterns are compatible only if the deeper pattern extends the
	// shallower one.
	if deep.Pattern.Addr&netcfg.Mask(shallow.Pattern.Len) != shallow.Pattern.Addr {
		return Atom{Pattern: deep.Pattern, MinLen: 1, MaxLen: 0} // empty
	}
	min := a.MinLen
	if b.MinLen > min {
		min = b.MinLen
	}
	max := a.MaxLen
	if b.MaxLen < max {
		max = b.MaxLen
	}
	return Atom{Pattern: deep.Pattern, MinLen: min, MaxLen: max}
}

// Subtract returns a \ b as a union of disjoint atoms.
func (a Atom) Subtract(b Atom) []Atom {
	if a.Empty() {
		return nil
	}
	inter := a.Intersect(b)
	if inter.Empty() {
		return []Atom{a}
	}
	var out []Atom
	add := func(at Atom) {
		if !at.Empty() {
			out = append(out, at)
		}
	}
	if b.Pattern.Len <= a.Pattern.Len {
		// b's pattern covers all of a's prefixes: only length carving.
		add(Atom{Pattern: a.Pattern, MinLen: a.MinLen, MaxLen: minInt(a.MaxLen, b.MinLen-1)})
		add(Atom{Pattern: a.Pattern, MinLen: maxInt(a.MinLen, b.MaxLen+1), MaxLen: a.MaxLen})
		return out
	}
	// b is deeper than a. Three disjoint parts of a:
	// (1) announced prefixes too short to be constrained by b's pattern
	//     (p.Len < b.Pattern.Len implies p cannot match b because
	//     b.MinLen >= b.Pattern.Len);
	add(Atom{Pattern: a.Pattern, MinLen: a.MinLen, MaxLen: minInt(a.MaxLen, b.Pattern.Len-1)})
	// (2) prefixes under sibling branches along the path from a.Pattern
	//     down to b.Pattern;
	for k := a.Pattern.Len; k < b.Pattern.Len; k++ {
		sibAddr := b.Pattern.Addr ^ (1 << uint(31-k))
		sib := netcfg.NewPrefix(sibAddr, k+1)
		add(Atom{Pattern: sib, MinLen: maxInt(a.MinLen, b.Pattern.Len), MaxLen: a.MaxLen})
	}
	// (3) prefixes under b's own pattern with lengths outside b's range.
	base := maxInt(a.MinLen, b.Pattern.Len)
	add(Atom{Pattern: b.Pattern, MinLen: base, MaxLen: minInt(a.MaxLen, b.MinLen-1)})
	add(Atom{Pattern: b.Pattern, MinLen: maxInt(base, b.MaxLen+1), MaxLen: a.MaxLen})
	return out
}

// PrefixSet is a union of atoms.
type PrefixSet []Atom

// FullPrefixSet matches every announced prefix.
func FullPrefixSet() PrefixSet { return PrefixSet{FullAtom()} }

// Empty reports whether the set matches nothing.
func (s PrefixSet) Empty() bool {
	for _, a := range s {
		if !a.Empty() {
			return false
		}
	}
	return true
}

// Contains reports membership of a concrete prefix.
func (s PrefixSet) Contains(p netcfg.Prefix) bool {
	for _, a := range s {
		if a.Contains(p) {
			return true
		}
	}
	return false
}

// Sample returns a concrete member, or ok=false if the set is empty.
func (s PrefixSet) Sample() (netcfg.Prefix, bool) {
	for _, a := range s {
		if !a.Empty() {
			return a.Sample(), true
		}
	}
	return netcfg.Prefix{}, false
}

// Union returns s ∪ t.
func (s PrefixSet) Union(t PrefixSet) PrefixSet {
	out := make(PrefixSet, 0, len(s)+len(t))
	for _, a := range s {
		if !a.Empty() {
			out = append(out, a)
		}
	}
	for _, a := range t {
		if !a.Empty() {
			out = append(out, a)
		}
	}
	return out
}

// Intersect returns s ∩ t.
func (s PrefixSet) Intersect(t PrefixSet) PrefixSet {
	var out PrefixSet
	for _, a := range s {
		for _, b := range t {
			if i := a.Intersect(b); !i.Empty() {
				out = append(out, i)
			}
		}
	}
	return out
}

// Subtract returns s \ t.
func (s PrefixSet) Subtract(t PrefixSet) PrefixSet {
	cur := make(PrefixSet, 0, len(s))
	for _, a := range s {
		if !a.Empty() {
			cur = append(cur, a)
		}
	}
	for _, b := range t {
		if b.Empty() {
			continue
		}
		var next PrefixSet
		for _, a := range cur {
			next = append(next, a.Subtract(b)...)
		}
		cur = next
	}
	return cur
}

// Equal reports set equality (both differences empty).
func (s PrefixSet) Equal(t PrefixSet) bool {
	return s.Subtract(t).Empty() && t.Subtract(s).Empty()
}

// String implements fmt.Stringer.
func (s PrefixSet) String() string {
	var parts []string
	for _, a := range s {
		if !a.Empty() {
			parts = append(parts, a.String())
		}
	}
	if len(parts) == 0 {
		return "∅"
	}
	return strings.Join(parts, " ∪ ")
}

// MatchedSet computes the exact set of announced prefixes a prefix list
// permits, honouring first-match-wins ordering and deny entries.
func MatchedSet(pl *netcfg.PrefixList) PrefixSet {
	if pl == nil {
		return nil
	}
	remaining := FullPrefixSet()
	var matched PrefixSet
	for _, e := range pl.Entries {
		eSet := PrefixSet{AtomFromEntry(e)}
		if e.Action == netcfg.Permit {
			matched = matched.Union(remaining.Intersect(eSet))
		}
		remaining = remaining.Subtract(eSet)
	}
	return matched
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
