package symbolic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netcfg"
)

// CommCond is a conjunction of community constraints: every community in
// Req must be present on the route, every community in Forbid absent.
type CommCond struct {
	Req    map[netcfg.Community]bool
	Forbid map[netcfg.Community]bool
}

// TrueComm is the unconstrained community condition.
func TrueComm() CommCond { return CommCond{} }

// RequireComm returns a condition requiring a single community.
func RequireComm(c netcfg.Community) CommCond {
	return CommCond{Req: map[netcfg.Community]bool{c: true}}
}

// ForbidComm returns a condition forbidding a single community.
func ForbidComm(c netcfg.Community) CommCond {
	return CommCond{Forbid: map[netcfg.Community]bool{c: true}}
}

// Consistent reports whether the condition is satisfiable.
func (c CommCond) Consistent() bool {
	for comm := range c.Req {
		if c.Forbid[comm] {
			return false
		}
	}
	return true
}

// And conjoins two conditions; ok=false when the result is unsatisfiable.
func (c CommCond) And(d CommCond) (CommCond, bool) {
	out := CommCond{Req: map[netcfg.Community]bool{}, Forbid: map[netcfg.Community]bool{}}
	for k := range c.Req {
		out.Req[k] = true
	}
	for k := range d.Req {
		out.Req[k] = true
	}
	for k := range c.Forbid {
		out.Forbid[k] = true
	}
	for k := range d.Forbid {
		out.Forbid[k] = true
	}
	return out, out.Consistent()
}

// Negations returns the disjuncts of ¬c: one single-literal condition per
// literal in c, negated.
func (c CommCond) Negations() []CommCond {
	var out []CommCond
	for _, comm := range sortedComms(c.Req) {
		out = append(out, ForbidComm(comm))
	}
	for _, comm := range sortedComms(c.Forbid) {
		out = append(out, RequireComm(comm))
	}
	return out
}

// Holds evaluates the condition on a concrete community set.
func (c CommCond) Holds(comms map[netcfg.Community]bool) bool {
	for comm := range c.Req {
		if !comms[comm] {
			return false
		}
	}
	for comm := range c.Forbid {
		if comms[comm] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (c CommCond) String() string {
	var parts []string
	for _, comm := range sortedComms(c.Req) {
		parts = append(parts, "+"+comm.String())
	}
	for _, comm := range sortedComms(c.Forbid) {
		parts = append(parts, "-"+comm.String())
	}
	if len(parts) == 0 {
		return "any-community"
	}
	return strings.Join(parts, " ")
}

func sortedComms(m map[netcfg.Community]bool) []netcfg.Community {
	out := make([]netcfg.Community, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ProtoMask is a bitmask over route protocols.
type ProtoMask uint8

// Per-protocol mask bits.
const (
	MaskConnected ProtoMask = 1 << iota
	MaskStatic
	MaskOSPF
	MaskBGP
	MaskAll = MaskConnected | MaskStatic | MaskOSPF | MaskBGP
)

// MaskOf returns the mask bit for a redistribution protocol.
func MaskOf(p netcfg.RedistProtocol) ProtoMask {
	switch p {
	case netcfg.RedistConnected:
		return MaskConnected
	case netcfg.RedistStatic:
		return MaskStatic
	case netcfg.RedistOSPF:
		return MaskOSPF
	default:
		return MaskBGP
	}
}

// Protocols enumerates the protocols in the mask.
func (m ProtoMask) Protocols() []netcfg.RouteProtocol {
	var out []netcfg.RouteProtocol
	if m&MaskConnected != 0 {
		out = append(out, netcfg.ProtoConnected)
	}
	if m&MaskStatic != 0 {
		out = append(out, netcfg.ProtoStatic)
	}
	if m&MaskOSPF != 0 {
		out = append(out, netcfg.ProtoOSPF)
	}
	if m&MaskBGP != 0 {
		out = append(out, netcfg.ProtoBGP)
	}
	return out
}

// String implements fmt.Stringer.
func (m ProtoMask) String() string {
	if m == MaskAll {
		return "any-protocol"
	}
	var parts []string
	for _, p := range m.Protocols() {
		parts = append(parts, p.String())
	}
	if len(parts) == 0 {
		return "no-protocol"
	}
	return strings.Join(parts, "|")
}

// Class is a symbolic set of routes: a prefix set × a community condition
// × a protocol mask.
type Class struct {
	Prefixes PrefixSet
	Comms    CommCond
	Protos   ProtoMask
}

// FullClass matches every route.
func FullClass() Class {
	return Class{Prefixes: FullPrefixSet(), Comms: TrueComm(), Protos: MaskAll}
}

// Empty reports whether the class matches no route.
func (c Class) Empty() bool {
	return c.Prefixes.Empty() || !c.Comms.Consistent() || c.Protos == 0
}

// Contains evaluates membership of a concrete route.
func (c Class) Contains(r *netcfg.Route) bool {
	return c.Prefixes.Contains(r.Prefix) && c.Comms.Holds(r.Communities) &&
		c.Protos&MaskOf(r.Protocol.RedistSource()) != 0
}

// Sample produces a concrete route from the class: the minimal prefix,
// exactly the required communities, and the first allowed protocol.
func (c Class) Sample() (*netcfg.Route, bool) {
	if c.Empty() {
		return nil, false
	}
	p, ok := c.Prefixes.Sample()
	if !ok {
		return nil, false
	}
	r := netcfg.NewRoute(p)
	for comm := range c.Comms.Req {
		r.AddCommunity(comm)
	}
	protos := c.Protos.Protocols()
	// Prefer BGP samples when allowed: they are valid inputs to every
	// policy attachment point.
	r.Protocol = protos[0]
	for _, pr := range protos {
		if pr == netcfg.ProtoBGP {
			r.Protocol = pr
		}
	}
	return r, true
}

// String implements fmt.Stringer.
func (c Class) String() string {
	return fmt.Sprintf("{%s; %s; %s}", c.Prefixes, c.Comms, c.Protos)
}

// Intersect returns c ∩ d.
func (c Class) Intersect(d Class) Class {
	comms, ok := c.Comms.And(d.Comms)
	if !ok {
		return Class{}
	}
	return Class{
		Prefixes: c.Prefixes.Intersect(d.Prefixes),
		Comms:    comms,
		Protos:   c.Protos & d.Protos,
	}
}

// Subtract returns c \ d as a union of classes.
func (c Class) Subtract(d Class) Space {
	if c.Empty() {
		return nil
	}
	if d.Empty() {
		return Space{c}
	}
	var out Space
	// Routes in c whose prefix is outside d's prefixes.
	if ps := c.Prefixes.Subtract(d.Prefixes); !ps.Empty() {
		out = append(out, Class{Prefixes: ps, Comms: c.Comms, Protos: c.Protos})
	}
	inter := c.Prefixes.Intersect(d.Prefixes)
	if inter.Empty() {
		return out
	}
	// Routes in the shared prefix region violating d's community condition.
	for _, neg := range d.Comms.Negations() {
		if comms, ok := c.Comms.And(neg); ok {
			out = append(out, Class{Prefixes: inter, Comms: comms, Protos: c.Protos})
		}
	}
	// Routes in the shared prefix region satisfying both community
	// conditions but outside d's protocols.
	if both, ok := c.Comms.And(d.Comms); ok {
		if protos := c.Protos &^ d.Protos; protos != 0 {
			out = append(out, Class{Prefixes: inter, Comms: both, Protos: protos})
		}
	}
	return out
}

// Space is a union of classes.
type Space []Class

// FullSpace matches every route.
func FullSpace() Space { return Space{FullClass()} }

// Empty reports whether the space matches no route.
func (s Space) Empty() bool {
	for _, c := range s {
		if !c.Empty() {
			return false
		}
	}
	return true
}

// Contains evaluates membership of a concrete route.
func (s Space) Contains(r *netcfg.Route) bool {
	for _, c := range s {
		if c.Contains(r) {
			return true
		}
	}
	return false
}

// Sample produces a concrete route from the space.
func (s Space) Sample() (*netcfg.Route, bool) {
	for _, c := range s {
		if r, ok := c.Sample(); ok {
			return r, true
		}
	}
	return nil, false
}

// Union returns s ∪ t.
func (s Space) Union(t Space) Space {
	out := make(Space, 0, len(s)+len(t))
	for _, c := range s {
		if !c.Empty() {
			out = append(out, c)
		}
	}
	for _, c := range t {
		if !c.Empty() {
			out = append(out, c)
		}
	}
	return out
}

// Intersect returns s ∩ t.
func (s Space) Intersect(t Space) Space {
	var out Space
	for _, a := range s {
		for _, b := range t {
			if i := a.Intersect(b); !i.Empty() {
				out = append(out, i)
			}
		}
	}
	return out
}

// Subtract returns s \ t.
func (s Space) Subtract(t Space) Space {
	cur := make(Space, 0, len(s))
	for _, c := range s {
		if !c.Empty() {
			cur = append(cur, c)
		}
	}
	for _, b := range t {
		if b.Empty() {
			continue
		}
		var next Space
		for _, a := range cur {
			next = append(next, a.Subtract(b)...)
		}
		cur = next
	}
	return cur
}
