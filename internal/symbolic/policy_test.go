package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netcfg"
)

// testEnv is a minimal PolicyEnv for constructing scenarios.
type testEnv struct {
	prefixLists    map[string]*netcfg.PrefixList
	communityLists map[string]*netcfg.CommunityList
}

func (e *testEnv) LookupPrefixList(name string) *netcfg.PrefixList { return e.prefixLists[name] }
func (e *testEnv) LookupCommunityList(name string) *netcfg.CommunityList {
	return e.communityLists[name]
}

func env() *testEnv {
	return &testEnv{
		prefixLists: map[string]*netcfg.PrefixList{
			"nets": {Name: "nets", Entries: []netcfg.PrefixListEntry{
				{Seq: 5, Action: netcfg.Permit, Prefix: netcfg.MustPrefix("1.2.3.0/24"), Ge: 24},
			}},
		},
		communityLists: map[string]*netcfg.CommunityList{
			"1": {Name: "1", Entries: []netcfg.CommunityListEntry{
				{Action: netcfg.Permit, Community: netcfg.MustCommunity("100:1")},
			}},
			"2": {Name: "2", Entries: []netcfg.CommunityListEntry{
				{Action: netcfg.Permit, Community: netcfg.MustCommunity("101:1")},
			}},
		},
	}
}

func TestClassSubtractMatchesConcrete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Class {
			c := Class{Prefixes: PrefixSet{randomAtom(r)}, Comms: TrueComm(), Protos: MaskAll}
			switch r.Intn(3) {
			case 0:
				c.Comms = RequireComm(netcfg.NewCommunity(100, uint16(r.Intn(3))))
			case 1:
				c.Comms = ForbidComm(netcfg.NewCommunity(100, uint16(r.Intn(3))))
			}
			if r.Intn(2) == 0 {
				c.Protos = ProtoMask(1 + r.Intn(15))
			}
			return c
		}
		a, b := mk(), mk()
		diff := a.Subtract(b)
		for i := 0; i < 48; i++ {
			route := netcfg.NewRoute(randomPrefix(r, a.Prefixes[0]))
			route.Protocol = []netcfg.RouteProtocol{netcfg.ProtoBGP, netcfg.ProtoOSPF,
				netcfg.ProtoConnected, netcfg.ProtoStatic}[r.Intn(4)]
			for low := uint16(0); low < 3; low++ {
				if r.Intn(2) == 0 {
					route.AddCommunity(netcfg.NewCommunity(100, low))
				}
			}
			want := a.Contains(route) && !b.Contains(route)
			if diff.Contains(route) != want {
				t.Logf("a=%v b=%v route=%v want=%v", a, b, route, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAcceptSpaceMatchesConcreteEvaluator(t *testing.T) {
	e := env()
	pol := &netcfg.RoutePolicy{Name: "p", Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Deny,
			Matches: []netcfg.Match{netcfg.MatchCommunityList{List: "1"}}},
		{Seq: 20, Action: netcfg.Permit,
			Matches: []netcfg.Match{netcfg.MatchPrefixList{List: "nets"}}},
		{Seq: 30, Action: netcfg.Permit,
			Matches: []netcfg.Match{netcfg.MatchCommunityList{List: "2"}}},
	}}
	accept := AcceptSpace(pol, e)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		route := netcfg.NewRoute(randomPrefix(r, NewAtom(netcfg.MustPrefix("1.2.3.0/24"), 24, 32)))
		if r.Intn(2) == 0 {
			route.AddCommunity(netcfg.MustCommunity("100:1"))
		}
		if r.Intn(2) == 0 {
			route.AddCommunity(netcfg.MustCommunity("101:1"))
		}
		want := netcfg.EvalPolicy(pol, e, route).Permitted
		return accept.Contains(route) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSearchPolicyFindsPermitWitness(t *testing.T) {
	e := env()
	// Policy permits routes carrying 100:1 — the no-transit violation shape.
	pol := &netcfg.RoutePolicy{Name: "FILTER", Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Permit},
	}}
	q := Query{
		Input: Space{{Prefixes: FullPrefixSet(),
			Comms: RequireComm(netcfg.MustCommunity("100:1")), Protos: MaskBGP}},
		Action: netcfg.Permit,
	}
	witness, found := SearchPolicy(pol, e, q)
	if !found {
		t.Fatal("expected a witness")
	}
	if !witness.HasCommunity(netcfg.MustCommunity("100:1")) {
		t.Errorf("witness %v lacks required community", witness)
	}
	// The witness must actually be permitted by the concrete evaluator.
	if !netcfg.EvalPolicy(pol, e, witness).Permitted {
		t.Errorf("witness %v is not actually permitted", witness)
	}
}

func TestSearchPolicyNoWitnessWhenPolicyCorrect(t *testing.T) {
	e := env()
	// Correct egress filter: deny 100:1 then permit.
	pol := &netcfg.RoutePolicy{Name: "FILTER", Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Deny,
			Matches: []netcfg.Match{netcfg.MatchCommunityList{List: "1"}}},
		{Seq: 20, Action: netcfg.Permit},
	}}
	q := Query{
		Input: Space{{Prefixes: FullPrefixSet(),
			Comms: RequireComm(netcfg.MustCommunity("100:1")), Protos: MaskBGP}},
		Action: netcfg.Permit,
	}
	if w, found := SearchPolicy(pol, e, q); found {
		t.Fatalf("unexpected witness %v for correct filter", w)
	}
}

func TestSearchPolicyDenyQueryFindsWronglyDenied(t *testing.T) {
	e := env()
	// Deny-everything policy must yield a deny witness even for clean routes.
	pol := &netcfg.RoutePolicy{Name: "D", Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Deny},
	}}
	q := Query{
		Input: Space{{Prefixes: FullPrefixSet(),
			Comms: ForbidComm(netcfg.MustCommunity("100:1")), Protos: MaskBGP}},
		Action: netcfg.Deny,
	}
	w, found := SearchPolicy(pol, e, q)
	if !found {
		t.Fatal("expected deny witness")
	}
	if w.HasCommunity(netcfg.MustCommunity("100:1")) {
		t.Errorf("witness %v violates the input constraint", w)
	}
}

// TestAndOrSemanticsDistinguished is the paper's §4.2 case in symbolic
// form: a single deny stanza ANDing two community matches does NOT deny a
// route carrying only one community, while split stanzas do.
func TestAndOrSemanticsDistinguished(t *testing.T) {
	e := env()
	and := &netcfg.RoutePolicy{Name: "AND", Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Deny, Matches: []netcfg.Match{
			netcfg.MatchCommunityList{List: "1"},
			netcfg.MatchCommunityList{List: "2"},
		}},
		{Seq: 20, Action: netcfg.Permit},
	}}
	or := &netcfg.RoutePolicy{Name: "OR", Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Deny,
			Matches: []netcfg.Match{netcfg.MatchCommunityList{List: "1"}}},
		{Seq: 20, Action: netcfg.Deny,
			Matches: []netcfg.Match{netcfg.MatchCommunityList{List: "2"}}},
		{Seq: 30, Action: netcfg.Permit},
	}}
	q := Query{
		Input: Space{{Prefixes: FullPrefixSet(),
			Comms: RequireComm(netcfg.MustCommunity("100:1")), Protos: MaskBGP}},
		Action: netcfg.Permit,
	}
	if _, found := SearchPolicy(and, e, q); !found {
		t.Error("AND policy should leak single-community routes (witness expected)")
	}
	if w, found := SearchPolicy(or, e, q); found {
		t.Errorf("OR policy should filter single-community routes, got witness %v", w)
	}
}

func TestUniverseCoversListBoundaries(t *testing.T) {
	dev := netcfg.NewDevice("d", netcfg.VendorCisco)
	dev.PrefixLists["nets"] = env().prefixLists["nets"]
	dev.CommunityLists["1"] = env().communityLists["1"]
	routes := Universe(dev)
	if len(routes) == 0 {
		t.Fatal("empty universe")
	}
	sawBoundary := map[string]bool{}
	for _, r := range routes {
		sawBoundary[r.Prefix.String()] = true
	}
	for _, want := range []string{"1.2.3.0/24", "1.2.3.0/32", "1.2.2.0/24"} {
		if !sawBoundary[want] {
			t.Errorf("universe missing boundary prefix %s", want)
		}
	}
	// Universe must be deterministic.
	again := Universe(dev)
	if len(again) != len(routes) {
		t.Fatalf("universe not deterministic: %d vs %d", len(routes), len(again))
	}
	for i := range routes {
		if routes[i].String() != again[i].String() {
			t.Fatalf("universe order differs at %d: %v vs %v", i, routes[i], again[i])
		}
	}
}
