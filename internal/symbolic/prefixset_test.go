package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netcfg"
)

// randomAtom generates a well-formed atom from quick's random source.
func randomAtom(r *rand.Rand) Atom {
	patLen := r.Intn(33)
	pattern := netcfg.NewPrefix(r.Uint32(), patLen)
	min := patLen + r.Intn(33-patLen)
	max := min + r.Intn(33-min)
	return Atom{Pattern: pattern, MinLen: min, MaxLen: max}
}

// randomPrefix generates an announced prefix biased toward the atom's
// neighborhood so membership flips are exercised.
func randomPrefix(r *rand.Rand, near Atom) netcfg.Prefix {
	length := r.Intn(33)
	addr := r.Uint32()
	if r.Intn(2) == 0 {
		// Half the samples share the atom's pattern bits.
		addr = near.Pattern.Addr | (addr &^ netcfg.Mask(near.Pattern.Len))
		if r.Intn(2) == 0 && near.MinLen <= 32 {
			length = near.MinLen + r.Intn(33-near.MinLen)
		}
	}
	return netcfg.NewPrefix(addr, length)
}

func TestAtomIntersectSoundAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomAtom(r), randomAtom(r)
		inter := a.Intersect(b)
		for i := 0; i < 64; i++ {
			p := randomPrefix(r, a)
			want := a.Contains(p) && b.Contains(p)
			if inter.Contains(p) != want {
				t.Logf("a=%v b=%v inter=%v p=%v want=%v", a, b, inter, p, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAtomSubtractSoundAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomAtom(r), randomAtom(r)
		diff := a.Subtract(b)
		got := func(p netcfg.Prefix) bool {
			for _, d := range diff {
				if d.Contains(p) {
					return true
				}
			}
			return false
		}
		for i := 0; i < 64; i++ {
			p := randomPrefix(r, a)
			want := a.Contains(p) && !b.Contains(p)
			if got(p) != want {
				t.Logf("a=%v b=%v diff=%v p=%v want=%v", a, b, diff, p, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAtomSubtractProducesDisjointAtoms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomAtom(r), randomAtom(r)
		diff := a.Subtract(b)
		for i := range diff {
			for j := i + 1; j < len(diff); j++ {
				if !diff[i].Intersect(diff[j]).Empty() {
					t.Logf("overlap: %v and %v from a=%v b=%v", diff[i], diff[j], a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPrefixSetAlgebraProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s, u PrefixSet
		for i := 0; i < 3; i++ {
			s = append(s, randomAtom(r))
			u = append(u, randomAtom(r))
		}
		union := s.Union(u)
		inter := s.Intersect(u)
		diff := s.Subtract(u)
		for i := 0; i < 64; i++ {
			p := randomPrefix(r, s[0])
			inS, inU := s.Contains(p), u.Contains(p)
			if union.Contains(p) != (inS || inU) {
				return false
			}
			if inter.Contains(p) != (inS && inU) {
				return false
			}
			if diff.Contains(p) != (inS && !inU) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrefixSetEqualIsReflexiveAndDetectsDifference(t *testing.T) {
	a := PrefixSet{NewAtom(netcfg.MustPrefix("10.0.0.0/8"), 8, 24)}
	if !a.Equal(a) {
		t.Error("set not equal to itself")
	}
	// Split into two halves: still equal as a set.
	split := PrefixSet{
		NewAtom(netcfg.MustPrefix("10.0.0.0/8"), 8, 16),
		NewAtom(netcfg.MustPrefix("10.0.0.0/8"), 17, 24),
	}
	if !a.Equal(split) {
		t.Error("length-split set should be equal")
	}
	narrower := PrefixSet{NewAtom(netcfg.MustPrefix("10.0.0.0/8"), 8, 23)}
	if a.Equal(narrower) {
		t.Error("narrower set should differ")
	}
}

func TestAtomSampleIsMember(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAtom(r)
		if a.Empty() {
			return true
		}
		return a.Contains(a.Sample())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMatchedSetHonorsDenyAndOrder(t *testing.T) {
	pl := &netcfg.PrefixList{Name: "l", Entries: []netcfg.PrefixListEntry{
		{Seq: 5, Action: netcfg.Deny, Prefix: netcfg.MustPrefix("10.1.0.0/16"), Ge: 16, Le: 32},
		{Seq: 10, Action: netcfg.Permit, Prefix: netcfg.MustPrefix("10.0.0.0/8"), Ge: 8, Le: 32},
	}}
	set := MatchedSet(pl)
	cases := []struct {
		p    string
		want bool
	}{
		{"10.0.0.0/8", true},
		{"10.2.0.0/16", true},
		{"10.1.0.0/16", false}, // denied first
		{"10.1.5.0/24", false}, // under the denied entry
		{"11.0.0.0/8", false},  // implicit deny
	}
	for _, c := range cases {
		if got := set.Contains(netcfg.MustPrefix(c.p)); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v (set %v)", c.p, got, c.want, set)
		}
	}
	// Cross-check against the concrete evaluator.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPrefix(r, NewAtom(netcfg.MustPrefix("10.0.0.0/8"), 8, 32))
		return set.Contains(p) == pl.Matches(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFullAtomContainsEverything(t *testing.T) {
	f := func(addr uint32, lenRaw uint8) bool {
		p := netcfg.NewPrefix(addr, int(lenRaw%33))
		return FullAtom().Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
