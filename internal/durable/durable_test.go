package durable

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testKey(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("k1")
	payload := []byte(`{"verified":true,"findings":null}`)
	if _, ok := c.Get(key); ok {
		t.Fatal("expected miss on empty cache")
	}
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("expected hit after Put")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestRejectsNonJSONPayload(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey("k"), []byte("not json")); err == nil {
		t.Fatal("expected error for non-JSON payload")
	}
}

// A second Cache over the same directory — a different process, as far as
// the on-disk format is concerned — must see entries the first one wrote.
func TestSharedAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("shared")
	if err := c1.Put(key, []byte(`"result"`)); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok || string(got) != `"result"` {
		t.Fatalf("second open missed entry written by first: ok=%v got=%q", ok, got)
	}
}

// Corruption in any form — truncation, bit flips, a wrong-key envelope —
// must read as a miss, quarantine the damaged file, and leave the cache
// serving.
func TestCorruptEntryQuarantined(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a byte inside the payload region (past the envelope
			// prefix) so the JSON still parses but the checksum fails.
			data[len(data)-10] ^= 0x20
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-key", func(t *testing.T, path string) {
			var e entry
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatal(err)
			}
			e.Key = fmt.Sprintf("%x", testKey("someone else"))
			out, _ := json.Marshal(e)
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			key := testKey("victim")
			if err := c.Put(key, []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, c.entryPath(key))
			if _, ok := c.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if st := c.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
			}
			if _, err := os.Stat(c.entryPath(key)); !os.IsNotExist(err) {
				t.Fatal("corrupt entry still in the live tree")
			}
			q, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
			if err != nil || len(q) != 1 {
				t.Fatalf("expected 1 quarantined file, got %v (err=%v)", q, err)
			}
			// The cache keeps working: a re-Put re-serves.
			if err := c.Put(key, []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(key); !ok {
				t.Fatal("re-Put after quarantine did not serve")
			}
		})
	}
}

func TestNewerFormatVersionRefused(t *testing.T) {
	dir := t.TempDir()
	idx, _ := json.Marshal(index{Version: FormatVersion + 1})
	if err := os.WriteFile(filepath.Join(dir, "index.json"), idx, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("expected Open to refuse a newer format version")
	}
}

func TestCorruptIndexQuarantinedAndRewritten(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open should survive a corrupt index: %v", err)
	}
	q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(q) != 1 {
		t.Fatalf("expected corrupt index quarantined, got %v", q)
	}
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	var idx index
	if err := json.Unmarshal(data, &idx); err != nil || idx.Version != FormatVersion {
		t.Fatalf("index not rewritten: %s (err=%v)", data, err)
	}
	_ = c
}

func TestEvictionSweep(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{MaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Ten ~300-byte entries with strictly increasing mtimes.
	base := time.Now().Add(-time.Hour)
	var keys [][sha256.Size]byte
	for i := 0; i < 10; i++ {
		key := testKey(fmt.Sprintf("entry-%d", i))
		keys = append(keys, key)
		payload, _ := json.Marshal(map[string]string{"filler": fmt.Sprintf("%0256d", i)})
		if err := c.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(c.entryPath(key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	filepath.Walk(filepath.Join(dir, "objects"), func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	// Bound the cache to roughly half its current size: the sweep must
	// evict the oldest entries first and keep the newest.
	c.maxBytes = total / 2
	evicted, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if evicted == 0 || evicted >= 10 {
		t.Fatalf("evicted %d entries, want some but not all", evicted)
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived the sweep")
	}
	if _, ok := c.Get(keys[9]); !ok {
		t.Fatal("newest entry was evicted")
	}
	if st := c.Stats(); st.Evicted != uint64(evicted) {
		t.Fatalf("evicted counter = %d, want %d", st.Evicted, evicted)
	}
}

func TestStaleTempsSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	litter := filepath.Join(dir, "objects", ".durable-tmp-12345")
	if err := os.WriteFile(litter, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(litter); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
}

// errKilled simulates the writer dying at a syscall boundary.
var errKilled = errors.New("killed at boundary")

// TestWriteAtomicKilledAtEveryBoundary is the checkpoint-atomicity
// satellite: the writer is killed before each syscall in turn, and the
// reader must see either the previous contents or the new contents —
// never a torn file, never a missing file when one existed before.
func TestWriteAtomicKilledAtEveryBoundary(t *testing.T) {
	prev := []byte(`{"checkpoint":"previous","iteration":3}`)
	next := []byte(`{"checkpoint":"next","iteration":4,"extra":"longer than before"}`)
	for stage := StageCreate; stage <= StageRename; stage++ {
		t.Run(stage.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "checkpoint.json")
			if err := WriteFileAtomic(path, prev, 0o644); err != nil {
				t.Fatal(err)
			}
			killAt := stage
			err := WriteFileAtomicHook(path, next, 0o644, func(s WriteStage) error {
				if s == killAt {
					return errKilled
				}
				return nil
			})
			if !errors.Is(err, errKilled) {
				t.Fatalf("expected kill error, got %v", err)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("checkpoint vanished after kill at %v: %v", stage, rerr)
			}
			if string(got) != string(prev) {
				t.Fatalf("kill at %v left torn/partial contents: %q", stage, got)
			}
			// After the crash, a sweep clears the litter and a retry
			// completes the write.
			RemoveStaleTemps(dir)
			if err := WriteFileAtomic(path, next, 0o644); err != nil {
				t.Fatal(err)
			}
			got, _ = os.ReadFile(path)
			if string(got) != string(next) {
				t.Fatalf("retry after kill did not land: %q", got)
			}
		})
	}
	// Killing after the rename (StageDone) means the new file is already
	// in place — the reader sees the new contents.
	t.Run("done", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "checkpoint.json")
		if err := WriteFileAtomic(path, prev, 0o644); err != nil {
			t.Fatal(err)
		}
		err := WriteFileAtomicHook(path, next, 0o644, func(s WriteStage) error {
			if s == StageDone {
				return errKilled
			}
			return nil
		})
		if !errors.Is(err, errKilled) {
			t.Fatalf("expected kill error, got %v", err)
		}
		got, _ := os.ReadFile(path)
		if string(got) != string(next) {
			t.Fatalf("kill after rename should leave new contents, got %q", got)
		}
	})
}

func TestConcurrentPutGet(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				key := testKey(fmt.Sprintf("c-%d", i%10))
				payload, _ := json.Marshal(map[string]int{"i": i % 10})
				if err := c.Put(key, payload); err != nil {
					t.Error(err)
					return
				}
				c.Get(key)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
