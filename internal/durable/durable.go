// Package durable is the crash-survival layer of the verification engine:
// a disk-backed, content-addressed result cache shareable across processes,
// and the atomic file-write primitive the engine's checkpoints are built
// on. Both are designed around one invariant — a reader never observes a
// torn file. Entries and checkpoints are written to a temporary file in
// the destination directory, synced, and renamed into place; POSIX rename
// atomicity guarantees any concurrent (or post-crash) reader sees either
// the previous complete file or the new complete file, never a prefix.
//
// The cache stores opaque payloads keyed by a 32-byte content hash (the
// engine keys verification results by sha256 over the check's inputs, see
// suite.Key). Every entry carries its own checksum; a corrupted entry —
// truncated by a dying filesystem, bit-flipped, or hand-edited — is
// detected on read, quarantined out of the object tree, and reported as a
// miss, so a damaged cache degrades to recomputation instead of poisoning
// results or crashing the run. The on-disk format is versioned through an
// index file: a cache directory written by a newer, incompatible layout is
// refused at Open (the caller degrades to memory-only), never reused or
// silently clobbered.
package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// FormatVersion is the on-disk layout version. Bump it when the entry or
// index format changes incompatibly; Open refuses directories written by a
// newer version so an old binary cannot corrupt a new cache.
const FormatVersion = 1

// WriteStage names one syscall boundary of an atomic file write, in
// order. The fault-injection tests kill the writer at every stage and
// assert a reader only ever sees the previous file or the new one.
type WriteStage int

// Atomic-write stages, in execution order.
const (
	StageCreate WriteStage = iota // temp file about to be created
	StageWrite                    // payload about to be written to the temp file
	StageSync                     // temp file about to be fsynced
	StageRename                   // temp file about to be renamed into place
	StageDone                     // rename completed
)

// String names the stage.
func (s WriteStage) String() string {
	switch s {
	case StageCreate:
		return "create"
	case StageWrite:
		return "write"
	case StageSync:
		return "sync"
	case StageRename:
		return "rename"
	case StageDone:
		return "done"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// tmpPattern marks the temporary files of in-flight atomic writes so
// crash litter is recognizable and sweepable.
const tmpPattern = ".durable-tmp-*"

// WriteFileAtomic writes data to path so that a concurrent reader — or a
// reader after a mid-write crash — sees either the file's previous
// contents or the new contents in full, never a torn mixture: the data
// goes to a temporary file in the destination directory, is fsynced, and
// is renamed into place.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomicHook(path, data, perm, nil)
}

// WriteFileAtomicHook is WriteFileAtomic with a fault-injection seam: hook
// (when non-nil) is called immediately before each syscall boundary, and a
// hook error abandons the write right there — exactly the state a process
// killed at that boundary leaves behind. Tests drive it to prove the
// old-or-new invariant at every stage; production callers pass nil.
func WriteFileAtomicHook(path string, data []byte, perm os.FileMode, hook func(WriteStage) error) error {
	step := func(s WriteStage) error {
		if hook == nil {
			return nil
		}
		return hook(s)
	}
	dir := filepath.Dir(path)
	if err := step(StageCreate); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Any abandoned path below leaves only the recognizable temp file; the
	// destination is untouched until the rename.
	if err := step(StageWrite); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := step(StageSync); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := step(StageRename); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return step(StageDone)
}

// RemoveStaleTemps deletes abandoned atomic-write temp files in dir — the
// litter of writers killed mid-write. It never touches completed files.
func RemoveStaleTemps(dir string) {
	matches, _ := filepath.Glob(filepath.Join(dir, tmpPattern))
	for _, m := range matches {
		os.Remove(m)
	}
}

// Options tunes a cache.
type Options struct {
	// MaxBytes bounds the object tree's total payload size; the eviction
	// sweep (run at Open and on demand) removes least-recently-used
	// entries until the tree fits. 0 applies DefaultMaxBytes; negative
	// disables eviction.
	MaxBytes int64
}

// DefaultMaxBytes bounds a cache directory at 256 MiB unless the caller
// says otherwise — large enough for hundreds of full-size runs, small
// enough that an unattended long-lived fleet cannot fill a disk.
const DefaultMaxBytes = 256 << 20

// Stats are a cache's counters since Open.
type Stats struct {
	// Hits and Misses count Get outcomes. Corrupt entries count as misses
	// and additionally as Corrupt.
	Hits   uint64
	Misses uint64
	// Writes counts successful Puts.
	Writes uint64
	// Corrupt counts entries whose checksum or envelope failed
	// verification; each was quarantined and served as a miss.
	Corrupt uint64
	// Evicted counts entries removed by eviction sweeps.
	Evicted uint64
}

// Cache is a disk-backed, content-addressed payload store, safe for
// concurrent use by goroutines and — thanks to atomic entry writes — by
// independent processes sharing the directory (cosynth, cofuzz, and
// batfishd shards mounting one cache all stay warm across restarts).
// Writers of the same key race benignly: entries are content-addressed,
// so both write the same bytes and last-rename-wins is a no-op.
type Cache struct {
	dir      string
	maxBytes int64

	// Counters are obs instruments from birth; SetMetrics adopts them
	// into a registry without losing counts (Open's initial sweep may
	// already have evicted entries by the time a registry is bound).
	hits    *obs.Counter
	misses  *obs.Counter
	writes  *obs.Counter
	corrupt *obs.Counter
	evicted *obs.Counter

	// sweepMu serializes eviction sweeps; Get/Put never take it.
	sweepMu sync.Mutex
}

// index is the versioned marker at the cache root. Reading it is how Open
// decides whether the directory's layout is one this binary understands.
type index struct {
	Version int `json:"version"`
}

// entry is the on-disk envelope of one cached payload. The checksum covers
// the payload bytes alone; the key is recorded so a misplaced or renamed
// entry file cannot answer for the wrong content address.
type entry struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// Open opens (creating if needed) a durable cache rooted at dir. A root
// whose index declares a newer format version is refused — the caller
// should degrade to running without the disk tier. A corrupted index is
// quarantined and rewritten: the object tree's entries are individually
// checksummed, so a fresh index over existing entries is safe. Opening
// also clears abandoned temp files and runs one eviction sweep.
func Open(dir string, opts Options) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("durable: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	c := &Cache{
		dir: dir, maxBytes: opts.MaxBytes,
		hits: &obs.Counter{}, misses: &obs.Counter{}, writes: &obs.Counter{},
		corrupt: &obs.Counter{}, evicted: &obs.Counter{},
	}
	if c.maxBytes == 0 {
		c.maxBytes = DefaultMaxBytes
	}
	idxPath := filepath.Join(dir, "index.json")
	data, err := os.ReadFile(idxPath)
	switch {
	case err == nil:
		var idx index
		if jerr := json.Unmarshal(data, &idx); jerr != nil || idx.Version <= 0 {
			// A torn or hand-damaged index: quarantine it and start a fresh
			// one. The entries stand on their own checksums.
			c.quarantine(idxPath)
		} else if idx.Version > FormatVersion {
			return nil, fmt.Errorf("durable: %s is format version %d, this binary speaks %d",
				dir, idx.Version, FormatVersion)
		}
	case os.IsNotExist(err):
	default:
		return nil, fmt.Errorf("durable: %w", err)
	}
	idxData, _ := json.Marshal(index{Version: FormatVersion})
	if err := WriteFileAtomic(idxPath, append(idxData, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("durable: writing index: %w", err)
	}
	RemoveStaleTemps(dir)
	RemoveStaleTemps(filepath.Join(dir, "objects"))
	fans, _ := os.ReadDir(filepath.Join(dir, "objects"))
	for _, f := range fans {
		if f.IsDir() {
			RemoveStaleTemps(filepath.Join(dir, "objects", f.Name()))
		}
	}
	if _, err := c.Sweep(); err != nil {
		return nil, err
	}
	return c, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// SetMetrics adopts the cache's counters into a metrics registry (nil is
// a no-op), preserving counts already accumulated. The disk tier's
// telemetry never changes what it serves.
func (c *Cache) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("cosynth_durable_hits_total", c.hits)
	reg.RegisterCounter("cosynth_durable_misses_total", c.misses)
	reg.RegisterCounter("cosynth_durable_writes_total", c.writes)
	reg.RegisterCounter("cosynth_durable_corrupt_total", c.corrupt)
	reg.RegisterCounter("cosynth_durable_evicted_total", c.evicted)
}

// Stats returns the counters since Open.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:    c.hits.Value(),
		Misses:  c.misses.Value(),
		Writes:  c.writes.Value(),
		Corrupt: c.corrupt.Value(),
		Evicted: c.evicted.Value(),
	}
}

// entryPath fans entries over 256 subdirectories by the key's first byte,
// keeping any one directory's entry count filesystem-friendly.
func (c *Cache) entryPath(key [sha256.Size]byte) string {
	hexKey := hex.EncodeToString(key[:])
	return filepath.Join(c.dir, "objects", hexKey[:2], hexKey+".json")
}

// quarantine moves a damaged file out of the live tree (into
// <root>/quarantine/) so it stops answering lookups but stays available
// for post-mortem. Removal is the fallback when the move itself fails —
// a file that can be neither trusted nor moved must not keep serving.
func (c *Cache) quarantine(path string) {
	qdir := filepath.Join(c.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(path)
		return
	}
	dest := filepath.Join(qdir, fmt.Sprintf("%d-%s", time.Now().UnixNano(), filepath.Base(path)))
	if err := os.Rename(path, dest); err != nil {
		os.Remove(path)
	}
}

// Get returns the payload stored under key. A missing entry is a plain
// miss; a damaged one — unreadable JSON, wrong envelope version, key
// mismatch, or checksum mismatch — is quarantined, counted, and reported
// as a miss, so corruption costs a recomputation, never a wrong answer.
func (c *Cache) Get(key [sha256.Size]byte) ([]byte, bool) {
	path := c.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Inc()
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Version != FormatVersion ||
		e.Key != hex.EncodeToString(key[:]) ||
		e.Sum != fmt.Sprintf("%x", sha256.Sum256(e.Payload)) {
		c.corrupt.Inc()
		c.misses.Inc()
		c.quarantine(path)
		return nil, false
	}
	c.hits.Inc()
	// Freshen the entry so the eviction sweep's LRU order tracks use, not
	// just creation. Best-effort: an unsupported Chtimes loses recency,
	// nothing else.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return e.Payload, true
}

// Put stores payload under key. The write is atomic (temp file + rename),
// so concurrent readers — in this process or another sharing the
// directory — never observe a partial entry. Payloads must be valid JSON
// (the engine stores JSON-encoded verification results); anything else is
// rejected up front rather than written as an entry Get would quarantine.
func (c *Cache) Put(key [sha256.Size]byte, payload []byte) error {
	if !json.Valid(payload) {
		return fmt.Errorf("durable: payload for %x is not valid JSON", key[:4])
	}
	path := c.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	e := entry{
		Version: FormatVersion,
		Key:     hex.EncodeToString(key[:]),
		Sum:     fmt.Sprintf("%x", sha256.Sum256(payload)),
		Payload: json.RawMessage(payload),
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(path, data, 0o644); err != nil {
		return err
	}
	c.writes.Inc()
	return nil
}

// Sweep enforces the size bound: when the object tree's total size
// exceeds MaxBytes, the least-recently-used entries (by mtime, which Get
// freshens) are removed until it fits. Returns how many entries were
// evicted. Safe to run concurrently with Get/Put — a swept entry simply
// becomes a miss.
func (c *Cache) Sweep() (int, error) {
	if c.maxBytes < 0 {
		return 0, nil
	}
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	type fileInfo struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	var total int64
	root := filepath.Join(c.dir, "objects")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil
		}
		files = append(files, fileInfo{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if err != nil {
		return 0, err
	}
	if total <= c.maxBytes {
		return 0, nil
	}
	sort.Slice(files, func(a, b int) bool {
		if !files[a].mtime.Equal(files[b].mtime) {
			return files[a].mtime.Before(files[b].mtime)
		}
		return files[a].path < files[b].path
	})
	evicted := 0
	for _, f := range files {
		if total <= c.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			evicted++
		}
	}
	c.evicted.Add(uint64(evicted))
	return evicted, nil
}
