// Package modularizer implements Figure 3's Modularizer and Composer: it
// turns the machine-readable topology (the JSON dictionary) into a
// sequence of formulaic natural-language prompts — one per router — each
// carrying that router's local policy instructions, and composes the
// per-router outputs back into a snapshot folder for Batfish.
//
// The modularizer embodies "Give the Model Time to Think": it breaks the
// network-wide synthesis task into one simpler sub-prompt per router (§2).
package modularizer

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/batfish"
	"repro/internal/lightyear"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// Task is one per-router synthesis prompt with its local spec.
type Task struct {
	Router string
	Prompt string
	// LocalSpec lists the requirements the semantic verifier will check
	// on this router's output.
	LocalSpec []lightyear.Requirement
}

// Tasks derives the per-router prompts for the no-transit use case: each
// prompt describes only that router's piece of the topology plus its local
// policy role — tagging at ingress and filtering at egress, at the hub on
// star topologies and at every ISP attachment point on other graphs.
func Tasks(t *topology.Topology) []Task {
	reqs := lightyear.SpecFor(t)
	// Derive the policy-role inputs once; routerPrompt runs per router and
	// the scans are O(V+E).
	star := netgen.IsStar(t)
	var attaches []lightyear.Attachment
	if !star {
		attaches = lightyear.ISPAttachments(t)
	}
	var out []Task
	for i := range t.Routers {
		spec := &t.Routers[i]
		var local []lightyear.Requirement
		for _, r := range reqs {
			if r.Router == spec.Name {
				local = append(local, r)
			}
		}
		out = append(out, Task{
			Router:    spec.Name,
			Prompt:    routerPrompt(t, spec, star, attaches),
			LocalSpec: local,
		})
	}
	return out
}

// routerPrompt renders the formulaic per-router prompt. The sentences are
// machine-generated (the paper notes hand-written topology prose is
// error-prone, §4.1) and deliberately regular.
func routerPrompt(t *topology.Topology, spec *topology.RouterSpec,
	star bool, attaches []lightyear.Attachment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Generate the Cisco IOS configuration file for router %s.\n", spec.Name)
	fmt.Fprintf(&b, "Router %s has AS number %d and router ID %s.\n", spec.Name, spec.ASN, spec.RouterID)
	for _, ifc := range spec.Interfaces {
		fmt.Fprintf(&b, "Router %s has interface %s with IP address %s.\n",
			spec.Name, ifc.Name, ifc.Address)
	}
	for _, nb := range spec.Neighbors {
		kind := "router"
		if nb.External {
			kind = "external peer"
		}
		fmt.Fprintf(&b, "Router %s is connected to %s %s at IP address %s in AS %d.\n",
			spec.Name, kind, nb.PeerName, nb.PeerIP, nb.PeerAS)
	}
	fmt.Fprintf(&b, "Router %s announces the networks: %s.\n",
		spec.Name, strings.Join(spec.Networks, ", "))

	if star {
		if spec.Name == "R1" {
			b.WriteString(policyInstructions(t))
		}
	} else {
		b.WriteString(attachmentPolicyInstructions(spec, attaches))
	}
	return b.String()
}

// attachmentPolicyInstructions renders the local no-transit role of an ISP
// attachment point on a non-star topology: tag at the ISP ingress, filter
// every other attachment's tag at the ISP egress. Routers without an ISP
// attachment have no policy role.
func attachmentPolicyInstructions(spec *topology.RouterSpec, attaches []lightyear.Attachment) string {
	var mine []lightyear.Attachment
	for _, a := range attaches {
		if a.Router == spec.Name {
			mine = append(mine, a)
		}
	}
	if len(mine) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("Policy instructions:\n")
	for _, a := range mine {
		fmt.Fprintf(&b, "At the ingress from %s (neighbor %s), apply route-map %s "+
			"that adds the community %s to every incoming route.\n",
			a.Peer.PeerName, a.Peer.PeerIP, a.IngressPolicy(), a.Community())
	}
	for _, a := range mine {
		var others []string
		for _, o := range attaches {
			if o.Router == a.Router && o.Peer.PeerName == a.Peer.PeerName {
				continue
			}
			others = append(others, o.Community().String())
		}
		if len(others) == 0 {
			continue
		}
		fmt.Fprintf(&b, "At the egress to %s (neighbor %s), apply route-map %s "+
			"that denies any route carrying any of the communities %s and permits all other routes.\n",
			a.Peer.PeerName, a.Peer.PeerIP, a.EgressPolicy(), strings.Join(others, " "))
	}
	return b.String()
}

// policyInstructions renders R1's local no-transit role: per-ISP ingress
// tagging and egress filtering, phrased with the paper's route-map names.
func policyInstructions(t *topology.Topology) string {
	var spokes []int
	for i := range t.Routers {
		if t.Routers[i].Name == "R1" {
			continue
		}
		var n int
		fmt.Sscanf(t.Routers[i].Name, "R%d", &n)
		spokes = append(spokes, n)
	}
	var b strings.Builder
	b.WriteString("Policy instructions:\n")
	for _, i := range spokes {
		tag := netgen.ISPCommunity(i)
		fmt.Fprintf(&b, "At the ingress from R%d (neighbor %d.0.0.2), apply route-map %s "+
			"that adds the community %s to every incoming route.\n",
			i, i, lightyear.IngressPolicyName(i), tag)
	}
	for _, i := range spokes {
		var others []string
		for _, j := range spokes {
			if j != i {
				others = append(others, netgen.ISPCommunity(j).String())
			}
		}
		fmt.Fprintf(&b, "At the egress to R%d (neighbor %d.0.0.2), apply route-map %s "+
			"that denies any route carrying any of the communities %s and permits all other routes.\n",
			i, i, lightyear.EgressPolicyName(i), strings.Join(others, " "))
	}
	return b.String()
}

// GlobalPrompt renders the single network-wide prompt used by the paper's
// failed "global policy" experiment (§4.1): the whole topology plus the
// global no-transit sentence, with no per-router roles.
func GlobalPrompt(t *topology.Topology) string {
	return netgen.Describe(t) +
		"Generate Cisco IOS configuration files for all routers.\n" +
		"Implement the no-transit policy: no two ISPs should be able to reach each other " +
		"through this network, but all ISPs should be able to reach the CUSTOMER and vice versa.\n"
}

// Compose assembles per-router configuration texts into a Batfish
// snapshot (Figure 3's Composer, which "puts back the pieces ... in a
// folder for Batfish").
func Compose(configs map[string]string) *batfish.Snapshot {
	s := batfish.NewSnapshot()
	for name, text := range configs {
		s.AddConfig(name, text)
	}
	return s
}

// WriteSnapshot writes per-router configs as <dir>/<router>.cfg.
func WriteSnapshot(dir string, configs map[string]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating snapshot dir: %w", err)
	}
	for name, text := range configs {
		path := filepath.Join(dir, name+".cfg")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	return nil
}
