// Package modularizer implements Figure 3's Modularizer and Composer: it
// turns the machine-readable topology (the JSON dictionary) into a
// sequence of formulaic natural-language prompts — one per router — each
// carrying that router's local policy instructions, and composes the
// per-router outputs back into a snapshot folder for Batfish.
//
// The modularizer embodies "Give the Model Time to Think": it breaks the
// network-wide synthesis task into one simpler sub-prompt per router (§2).
package modularizer

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/batfish"
	"repro/internal/lightyear"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// Task is one per-router synthesis prompt with its local spec.
type Task struct {
	Router string
	Prompt string
	// LocalSpec lists the requirements the semantic verifier will check
	// on this router's output.
	LocalSpec []lightyear.Requirement
}

// Tasks derives the per-router prompts for the no-transit use case: each
// prompt describes only that router's piece of the topology plus its local
// policy role — tagging at ingress and filtering at egress, at the hub on
// star topologies and at every ISP attachment point on other graphs.
func Tasks(t *topology.Topology) []Task {
	reqs := lightyear.SpecFor(t)
	// Bucket the spec by router in one pass. The spec grows with the
	// network's attachment count, so rescanning it once per router made
	// prompt rendering quadratic in network size; the buckets preserve
	// spec order, so each router's LocalSpec is unchanged.
	byRouter := make(map[string][]lightyear.Requirement, len(t.Routers))
	for _, r := range reqs {
		byRouter[r.Router] = append(byRouter[r.Router], r)
	}
	// Derive the policy-role inputs once; routerPrompt runs per router and
	// the scans are O(V+E).
	star := netgen.IsStar(t)
	var attaches []lightyear.Attachment
	var comms []string
	if !star {
		attaches = lightyear.ISPAttachments(t)
		// Every attachment's community tag renders in every other
		// attachment's egress sentence; format each once up front instead
		// of once per sentence it appears in.
		comms = make([]string, len(attaches))
		for i := range attaches {
			comms[i] = attaches[i].Community().String()
		}
	}
	var out []Task
	for i := range t.Routers {
		spec := &t.Routers[i]
		out = append(out, Task{
			Router:    spec.Name,
			Prompt:    routerPrompt(t, spec, star, attaches, comms),
			LocalSpec: byRouter[spec.Name],
		})
	}
	return out
}

// routerPrompt renders the formulaic per-router prompt. The sentences are
// machine-generated (the paper notes hand-written topology prose is
// error-prone, §4.1) and deliberately regular.
func routerPrompt(t *topology.Topology, spec *topology.RouterSpec,
	star bool, attaches []lightyear.Attachment, comms []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Generate the Cisco IOS configuration file for router %s.\n", spec.Name)
	fmt.Fprintf(&b, "Router %s has AS number %d and router ID %s.\n", spec.Name, spec.ASN, spec.RouterID)
	for _, ifc := range spec.Interfaces {
		fmt.Fprintf(&b, "Router %s has interface %s with IP address %s.\n",
			spec.Name, ifc.Name, ifc.Address)
	}
	for _, nb := range spec.Neighbors {
		kind := "router"
		if nb.External {
			kind = "external peer"
		}
		fmt.Fprintf(&b, "Router %s is connected to %s %s at IP address %s in AS %d.\n",
			spec.Name, kind, nb.PeerName, nb.PeerIP, nb.PeerAS)
	}
	fmt.Fprintf(&b, "Router %s announces the networks: %s.\n",
		spec.Name, strings.Join(spec.Networks, ", "))

	if star {
		if spec.Name == "R1" {
			b.WriteString(policyInstructions(t))
		}
	} else {
		b.WriteString(attachmentPolicyInstructions(spec, attaches, comms))
	}
	return b.String()
}

// attachmentPolicyInstructions renders the local no-transit role of an ISP
// attachment point on a non-star topology: tag at the ISP ingress, filter
// every other attachment's tag at the ISP egress. Routers without an ISP
// attachment have no policy role. comms is the pre-formatted community
// string of each attachment, positionally matched to attaches.
func attachmentPolicyInstructions(spec *topology.RouterSpec,
	attaches []lightyear.Attachment, comms []string) string {
	var mine []int
	for i := range attaches {
		if attaches[i].Router == spec.Name {
			mine = append(mine, i)
		}
	}
	if len(mine) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("Policy instructions:\n")
	for _, mi := range mine {
		a := attaches[mi]
		fmt.Fprintf(&b, "At the ingress from %s (neighbor %s), apply route-map %s "+
			"that adds the community %s to every incoming route.\n",
			a.Peer.PeerName, a.Peer.PeerIP, a.IngressPolicy(), comms[mi])
	}
	for _, mi := range mine {
		a := attaches[mi]
		others := make([]string, 0, len(attaches)-1)
		for j := range attaches {
			o := &attaches[j]
			if o.Router == a.Router && o.Peer.PeerName == a.Peer.PeerName {
				continue
			}
			others = append(others, comms[j])
		}
		if len(others) == 0 {
			continue
		}
		fmt.Fprintf(&b, "At the egress to %s (neighbor %s), apply route-map %s "+
			"that denies any route carrying any of the communities %s and permits all other routes.\n",
			a.Peer.PeerName, a.Peer.PeerIP, a.EgressPolicy(), strings.Join(others, " "))
	}
	return b.String()
}

// policyInstructions renders R1's local no-transit role: per-ISP ingress
// tagging and egress filtering, phrased with the paper's route-map names.
func policyInstructions(t *topology.Topology) string {
	var spokes []int
	for i := range t.Routers {
		if t.Routers[i].Name == "R1" {
			continue
		}
		var n int
		fmt.Sscanf(t.Routers[i].Name, "R%d", &n)
		spokes = append(spokes, n)
	}
	// Each spoke's community tag appears in every other spoke's egress
	// sentence; format the tags once instead of once per appearance.
	tags := make([]string, len(spokes))
	for k, i := range spokes {
		tags[k] = netgen.ISPCommunity(i).String()
	}
	var b strings.Builder
	b.WriteString("Policy instructions:\n")
	for k, i := range spokes {
		fmt.Fprintf(&b, "At the ingress from R%d (neighbor %d.0.0.2), apply route-map %s "+
			"that adds the community %s to every incoming route.\n",
			i, i, lightyear.IngressPolicyName(i), tags[k])
	}
	for _, i := range spokes {
		others := make([]string, 0, len(spokes)-1)
		for j, n := range spokes {
			if n != i {
				others = append(others, tags[j])
			}
		}
		fmt.Fprintf(&b, "At the egress to R%d (neighbor %d.0.0.2), apply route-map %s "+
			"that denies any route carrying any of the communities %s and permits all other routes.\n",
			i, i, lightyear.EgressPolicyName(i), strings.Join(others, " "))
	}
	return b.String()
}

// GlobalPrompt renders the single network-wide prompt used by the paper's
// failed "global policy" experiment (§4.1): the whole topology plus the
// global no-transit sentence, with no per-router roles.
func GlobalPrompt(t *topology.Topology) string {
	return netgen.Describe(t) +
		"Generate Cisco IOS configuration files for all routers.\n" +
		"Implement the no-transit policy: no two ISPs should be able to reach each other " +
		"through this network, but all ISPs should be able to reach the CUSTOMER and vice versa.\n"
}

// Compose assembles per-router configuration texts into a Batfish
// snapshot (Figure 3's Composer, which "puts back the pieces ... in a
// folder for Batfish").
func Compose(configs map[string]string) *batfish.Snapshot {
	s := batfish.NewSnapshot()
	for name, text := range configs {
		s.AddConfig(name, text)
	}
	return s
}

// WriteSnapshot writes per-router configs as <dir>/<router>.cfg.
func WriteSnapshot(dir string, configs map[string]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating snapshot dir: %w", err)
	}
	for name, text := range configs {
		path := filepath.Join(dir, name+".cfg")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	return nil
}
