package modularizer

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lightyear"
	"repro/internal/netgen"
)

func TestTasksOnePerRouter(t *testing.T) {
	topo, err := netgen.Star(7)
	if err != nil {
		t.Fatal(err)
	}
	tasks := Tasks(topo)
	if len(tasks) != 7 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[0].Router != "R1" {
		t.Errorf("first task = %s", tasks[0].Router)
	}
}

func TestHubPromptCarriesPolicyInstructions(t *testing.T) {
	topo, err := netgen.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	tasks := Tasks(topo)
	hub := tasks[0]
	for _, want := range []string{
		"Generate the Cisco IOS configuration file for router R1.",
		"apply route-map ADD_COMM_R2 that adds the community 100:1",
		"apply route-map FILTER_COMM_OUT_R2 that denies any route carrying any of the communities 101:1 102:1",
		"permits all other routes",
	} {
		if !strings.Contains(hub.Prompt, want) {
			t.Errorf("hub prompt missing %q:\n%s", want, hub.Prompt)
		}
	}
	// The hub carries every local-spec requirement.
	if len(hub.LocalSpec) != len(lightyear.NoTransitSpec(topo)) {
		t.Errorf("hub spec = %d requirements", len(hub.LocalSpec))
	}
}

func TestSpokePromptHasNoPolicyInstructions(t *testing.T) {
	topo, err := netgen.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	tasks := Tasks(topo)
	spoke := tasks[2]
	if strings.Contains(spoke.Prompt, "Policy instructions") {
		t.Errorf("spoke prompt should carry no policy role:\n%s", spoke.Prompt)
	}
	if len(spoke.LocalSpec) != 0 {
		t.Errorf("spoke spec = %v", spoke.LocalSpec)
	}
	for _, want := range []string{
		"Router R3 has AS number 3",
		"interface eth0/0 with IP address 3.0.0.2/24",
		"connected to router R1",
		"connected to external peer ISP3",
	} {
		if !strings.Contains(spoke.Prompt, want) {
			t.Errorf("spoke prompt missing %q", want)
		}
	}
}

func TestGlobalPromptStatesPolicyOnce(t *testing.T) {
	topo, err := netgen.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	p := GlobalPrompt(topo)
	if !strings.Contains(p, "no-transit policy") ||
		!strings.Contains(p, "Generate Cisco IOS configuration files for all routers") {
		t.Errorf("global prompt = %q", p)
	}
	if strings.Contains(p, "ADD_COMM") {
		t.Error("global prompt must not leak per-router roles")
	}
}

func TestComposeBuildsSnapshot(t *testing.T) {
	s := Compose(map[string]string{
		"R1": "hostname R1\n",
		"R2": "hostname R2\n",
	})
	if len(s.Devices) != 2 || s.Devices["R1"].Hostname != "R1" {
		t.Fatalf("snapshot = %+v", s.DeviceNames())
	}
}

func TestWriteSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	err := WriteSnapshot(dir, map[string]string{"R1": "hostname R1\n"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "R1.cfg"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hostname R1\n" {
		t.Errorf("content = %q", data)
	}
}
