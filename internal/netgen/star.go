// Package netgen is the paper's "network generator" (§4.1): given only the
// number of routers it produces (1) a textual description of the star
// topology used as an LLM prompt and (2) the JSON topology dictionary used
// by the topology verifier — the two outputs Figure 3's Modularizer
// consumes.
//
// The topology is the paper's Figure 4 star: R1 is attached to a CUSTOMER
// network, every other router R2..Rn is attached to a distinct ISP, and
// all ISP routers connect directly to R1.
package netgen

import (
	"fmt"
	"strings"

	"repro/internal/netcfg"
	"repro/internal/topology"
)

// Addressing scheme constants. Router indices, interface subnets, and
// network statements keep the literals of the paper's Table 3 examples
// (neighbor 7.0.0.2 AS 7, network 1.0.0.0/24).
const (
	// CustomerAS is the customer's AS number (ordinal-keyed customers of
	// multi-customer topologies take CustomerAS+ordinal).
	CustomerAS = 65500
	// ISPBaseAS is added to the router index (or, on attachment-keyed
	// topologies, the attachment ordinal) for ISP AS numbers: the ISP
	// attached to R2 has AS 1002. The base sits above maxGraphRouters so
	// no ISP can share an AS with an internal router — with the paper's
	// original base of 100, R102 and ISP2 both took AS 102 and AS-path
	// loop detection silently dropped the ISP's routes on graphs of 102+
	// routers.
	ISPBaseAS = 1000
)

// Star generates the Figure 4 star topology with n routers (n >= 2):
// R1 plus n-1 ISP-facing routers.
func Star(n int) (*topology.Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("star topology needs at least 2 routers, got %d", n)
	}
	t := &topology.Topology{Name: fmt.Sprintf("star-%d", n)}

	// R1: customer-facing hub.
	r1 := topology.RouterSpec{
		Name:     "R1",
		ASN:      1,
		RouterID: "1.0.0.1",
		Interfaces: []topology.InterfaceSpec{
			{Name: "eth0/0", Address: "1.0.0.1/24"},
		},
		Neighbors: []topology.NeighborSpec{
			{PeerName: "CUSTOMER", PeerIP: "1.0.0.2", PeerAS: CustomerAS, External: true},
		},
		Networks: []string{"1.0.0.0/24"},
	}
	for i := 2; i <= n; i++ {
		r1.Interfaces = append(r1.Interfaces, topology.InterfaceSpec{
			Name:    fmt.Sprintf("eth0/%d", i-1),
			Address: fmt.Sprintf("%d.0.0.1/24", i),
		})
		r1.Neighbors = append(r1.Neighbors, topology.NeighborSpec{
			PeerName: fmt.Sprintf("R%d", i),
			PeerIP:   fmt.Sprintf("%d.0.0.2", i),
			PeerAS:   uint32(i),
		})
		r1.Networks = append(r1.Networks, fmt.Sprintf("%d.0.0.0/24", i))
	}
	t.Routers = append(t.Routers, r1)

	for i := 2; i <= n; i++ {
		ri := topology.RouterSpec{
			Name:     fmt.Sprintf("R%d", i),
			ASN:      uint32(i),
			RouterID: fmt.Sprintf("%d.0.0.2", i),
			Interfaces: []topology.InterfaceSpec{
				{Name: "eth0/0", Address: fmt.Sprintf("%d.0.0.2/24", i)},
				{Name: "eth0/1", Address: fmt.Sprintf("20.%d.0.1/24", i)},
			},
			Neighbors: []topology.NeighborSpec{
				{PeerName: "R1", PeerIP: fmt.Sprintf("%d.0.0.1", i), PeerAS: 1},
				{PeerName: fmt.Sprintf("ISP%d", i), PeerIP: fmt.Sprintf("20.%d.0.2", i),
					PeerAS: uint32(ISPBaseAS + i), External: true},
			},
			Networks: []string{
				fmt.Sprintf("%d.0.0.0/24", i),
				fmt.Sprintf("20.%d.0.0/24", i),
			},
		}
		t.Routers = append(t.Routers, ri)
	}
	return t, nil
}

// ISPCommunity returns the community R1 attaches at ingress to routes
// learned from Ri: R2 tags 100:1, R3 tags 101:1, and so on (§4.2).
func ISPCommunity(i int) netcfg.Community {
	return netcfg.NewCommunity(uint16(98+i), 1)
}

// AttachmentCommunity returns the community tag of an attachment ordinal
// in the per-attachment allocation scheme: attachment o tags (98+o):1.
// The formula is the same as ISPCommunity's so the egress community-list
// naming convention carries over, but the key is the attachment — never
// the router — so two ISPs homed on one router get distinct tags. A
// topology uses either ordinal keying (every ISP neighbor carries an
// Attachment) or the legacy router-index keying; the two are never mixed
// within one graph, so the tag spaces cannot collide.
func AttachmentCommunity(ordinal int) netcfg.Community {
	return netcfg.NewCommunity(uint16(98+ordinal), 1)
}

// ISPPrefix returns the external prefix the ISP behind Ri originates
// (used by the BGP simulation that checks the global no-transit policy).
func ISPPrefix(i int) netcfg.Prefix {
	return netcfg.MustPrefix(fmt.Sprintf("150.%d.0.0/16", i))
}

// AttachmentPrefix returns the external prefix the ISP at an attachment
// ordinal originates in the per-attachment addressing scheme.
func AttachmentPrefix(ordinal int) netcfg.Prefix {
	return netcfg.MustPrefix(fmt.Sprintf("150.%d.0.0/16", ordinal))
}

// CustomerPrefix is the prefix the (single, legacy) customer originates.
func CustomerPrefix() netcfg.Prefix { return netcfg.MustPrefix("99.99.0.0/16") }

// CustomerPrefixAt returns the prefix customer ordinal c originates on
// multi-customer topologies: 99.<c>.0.0/16.
func CustomerPrefixAt(c int) netcfg.Prefix {
	return netcfg.MustPrefix(fmt.Sprintf("99.%d.0.0/16", c))
}

// Describe renders the formulaic natural-language description of the
// topology — the automated script output the paper uses instead of
// error-prone hand-written prose ("It is difficult to write a natural
// language description of the topology", §4.1).
func Describe(t *topology.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "The network %q has %d routers.\n", t.Name, len(t.Routers))
	for i := range t.Routers {
		r := &t.Routers[i]
		fmt.Fprintf(&b, "Router %s has AS number %d and router ID %s.\n", r.Name, r.ASN, r.RouterID)
		for _, ifc := range r.Interfaces {
			fmt.Fprintf(&b, "Router %s has interface %s with IP address %s.\n",
				r.Name, ifc.Name, ifc.Address)
		}
		for _, nb := range r.Neighbors {
			kind := "router"
			if nb.External {
				kind = "external peer"
			}
			fmt.Fprintf(&b, "Router %s is connected to %s %s at IP address %s in AS %d.\n",
				r.Name, kind, nb.PeerName, nb.PeerIP, nb.PeerAS)
			// Attachment-level facts, as their own sentences so the
			// neighbor sentence keeps its machine-parsed shape.
			if nb.Attachment > 0 {
				fmt.Fprintf(&b, "Peer %s is external attachment point %d of the network.\n",
					nb.PeerName, nb.Attachment)
			}
			if nb.External && len(nb.Prefixes) > 0 {
				fmt.Fprintf(&b, "Peer %s originates the prefixes: %s.\n",
					nb.PeerName, strings.Join(nb.Prefixes, ", "))
			}
		}
		fmt.Fprintf(&b, "Router %s announces the networks: %s.\n",
			r.Name, strings.Join(r.Networks, ", "))
	}
	return b.String()
}
