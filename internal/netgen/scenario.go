package netgen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// Generator produces a topology from one size parameter. The parameter's
// meaning is per-scenario (router count for star/ring/full-mesh, arity k
// for fat-tree); Scenario.SizeHint documents it.
type Generator func(n int) (*topology.Topology, error)

// Scenario is one registered topology family the synthesis engine can
// target. The registry replaces the seed's star-only hardwiring: every
// scenario yields the same two machine-readable artifacts — the JSON
// dictionary and the formulaic natural-language description — that the
// Modularizer consumes, plus per-router local no-transit specifications
// derived by lightyear.SpecFor.
type Scenario struct {
	// Name identifies the scenario ("star", "ring", "full-mesh",
	// "fat-tree", "dual-homed", "multi-customer", "random").
	Name string
	// Summary is a one-line description for catalogs and CLIs.
	Summary string
	// SizeHint documents the generator parameter.
	SizeHint string
	// DefaultSize is a sensible paper-scale default for the parameter.
	DefaultSize int
	// Generate builds the topology.
	Generate Generator
}

// scenarios is the built-in registry, in presentation order.
var scenarios = []Scenario{
	{
		Name:        "star",
		Summary:     "the paper's Figure 4 star: customer hub R1, one ISP per spoke",
		SizeHint:    "n = number of routers (hub + n-1 spokes), n >= 2",
		DefaultSize: 7,
		Generate:    Star,
	},
	{
		Name:        "ring",
		Summary:     "a cycle: customer on R1, one ISP on every other router, multi-hop transit",
		SizeHint:    "n = number of routers, n >= 3",
		DefaultSize: 8,
		Generate:    Ring,
	},
	{
		Name:        "full-mesh",
		Summary:     "a complete graph: every router pair linked, one-hop transit everywhere",
		SizeHint:    "n = number of routers, n >= 3",
		DefaultSize: 6,
		Generate:    FullMesh,
	},
	{
		Name:        "fat-tree",
		Summary:     "a k-ary fat-tree Clos: ISPs at the edge, internal agg/core layers",
		SizeHint:    "k = pod arity (even), routers = 5k^2/4",
		DefaultSize: 4,
		Generate:    FatTree,
	},
	{
		Name:        "dual-homed",
		Summary:     "a ring where every non-customer router is dual-homed to two ISPs (per-attachment tags)",
		SizeHint:    "n = number of routers, n >= 3 (2(n-1) ISP attachments)",
		DefaultSize: 6,
		Generate:    DualHomed,
	},
	{
		Name:        "multi-customer",
		Summary:     "a full mesh with max(2, n/3) customer networks and one ISP on each remaining router",
		SizeHint:    "n = number of routers, n >= 4",
		DefaultSize: 6,
		Generate:    MultiCustomer,
	},
	{
		Name:        "random",
		Summary:     "a seeded pseudo-random connected graph mixing single- and dual-homed ISPs",
		SizeHint:    "n = number of routers, n >= 4 (seeded by n: reproducible)",
		DefaultSize: 12,
		Generate:    Random,
	},
}

// Scenarios returns the registered topology families in stable order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, bool) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Generate builds a topology by scenario name; size <= 0 uses the
// scenario's default.
func Generate(name string, size int) (*topology.Topology, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown topology scenario %q (have %v)", name, ScenarioNames())
	}
	if size <= 0 {
		size = s.DefaultSize
	}
	return s.Generate(size)
}

// GenerateSeeded builds a scenario variant at a seed: the random family
// re-keys its rng stream (seed 0 reproduces the registry default), every
// other family is deterministic in its size alone and ignores the seed.
// The fuzz campaign engine and cosynth's -seed replay path both resolve
// topologies through this one function, so a minimized counterexample
// regenerates the exact graph the campaign failed on.
func GenerateSeeded(name string, size int, seed int64) (*topology.Topology, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown topology scenario %q (have %v)", name, ScenarioNames())
	}
	if size <= 0 {
		size = s.DefaultSize
	}
	if name == "random" {
		return RandomWith(size, RandomOpts{Seed: seed, ExtraEdges: -1})
	}
	return s.Generate(size)
}

// ScenarioNames lists the registered scenario names in stable order.
func ScenarioNames() []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}

// ParseScenarioArg splits a "name[:size]" scenario argument, the CLI
// shorthand for one generator invocation ("dual-homed:8", "random:20").
// size is 0 when the argument carries none, so callers can apply their
// own default (a -n flag or the scenario default).
func ParseScenarioArg(arg string) (name string, size int, err error) {
	name = arg
	if i := strings.IndexByte(arg, ':'); i >= 0 {
		name = arg[:i]
		n, err := strconv.Atoi(arg[i+1:])
		if err != nil || n <= 0 {
			return "", 0, fmt.Errorf("scenario argument %q: size after ':' must be a positive integer", arg)
		}
		size = n
	}
	if _, ok := Lookup(name); !ok {
		return "", 0, fmt.Errorf("unknown topology scenario %q (have %v)", name, ScenarioNames())
	}
	return name, size, nil
}

func ringName(n int) string          { return fmt.Sprintf("ring-%d", n) }
func meshName(n int) string          { return fmt.Sprintf("full-mesh-%d", n) }
func fatTreeName(k int) string       { return fmt.Sprintf("fat-tree-%d", k) }
func dualHomedName(n int) string     { return fmt.Sprintf("dual-homed-%d", n) }
func multiCustomerName(n int) string { return fmt.Sprintf("multi-customer-%d", n) }
func randomName(n int) string        { return fmt.Sprintf("random-%d", n) }

// ispRange lists the routers in [lo, hi] as ISP attachment points.
func ispRange(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

func errTooSmall(kind string, n, min int) error {
	return fmt.Errorf("%s topology needs at least %d routers, got %d", kind, min, n)
}
