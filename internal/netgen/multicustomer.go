package netgen

import "repro/internal/topology"

// MultiCustomer generates a full mesh of n routers (n >= 4) with several
// customer networks: the first max(2, n/3) routers each carry one
// ordinal-keyed customer (CUSTOMER1, CUSTOMER2, ...; distinct stub AS and
// originated prefix per customer), and every remaining router carries one
// ISP attachment point. The global no-transit check already quantifies
// over all customer stubs — every ISP and every customer must reach each
// other while no two ISPs see each other's prefixes — so this scenario
// exercises the multi-customer side of the attachment model: customer
// attachments are first-class points too, they just carry no tagging
// obligations.
func MultiCustomer(n int) (*topology.Topology, error) {
	if n < 4 {
		return nil, errTooSmall("multi-customer", n, 4)
	}
	var edges [][2]int
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	numCustomers := n / 3
	if numCustomers < 2 {
		numCustomers = 2
	}
	var attaches []extAttachment
	for c := 1; c <= numCustomers; c++ {
		attaches = append(attaches, extAttachment{router: c, ordinal: c, customer: true})
	}
	ord := 0
	for i := numCustomers + 1; i <= n; i++ {
		ord++
		attaches = append(attaches, extAttachment{router: i, ordinal: ord})
	}
	return buildGraphExt(multiCustomerName(n), n, edges, attaches)
}
