package netgen

import (
	"math/rand"

	"repro/internal/topology"
)

// Random generates a connected pseudo-random graph of n routers (n >= 4)
// for fuzzing the per-attachment specification: a random spanning tree
// plus ~n/2 extra edges, R1 holding the customer attachment, and a random
// ISP placement in which roughly seven in ten non-customer routers attach
// one ISP and a third of those attach a second (dual-homing). The
// generator is seeded by n alone, so a given size always yields the same
// graph — `random` scenarios are reproducible test cases, not one-shot
// noise — while different sizes vary both the degree distribution and the
// single-/dual-homing mix. At least two ISP attachments are guaranteed so
// the no-transit policy is never vacuous. RandomWith varies the graph
// per (size, seed) pair and bounds the extra edges — the axes the fuzz
// campaign sweeps and shrinks along.
func Random(n int) (*topology.Topology, error) {
	return RandomWith(n, RandomOpts{ExtraEdges: -1})
}

// RandomOpts parameterizes the random family beyond the registry's
// seeded-by-size default — the knobs the fuzz campaign sweeps and its
// shrinker minimizes along.
type RandomOpts struct {
	// Seed selects a graph variant at a given size. Seed 0 is the
	// registry's legacy stream (byte-identical to the pre-fuzz Random),
	// so existing scenarios and transcripts are unchanged.
	Seed int64
	// ExtraEdges caps the non-tree edges sprinkled over the spanning
	// tree; -1 keeps the family default of n/2. The generator always
	// draws the default's full candidate sequence from the rng and only
	// keeps the first ExtraEdges of them, so shrinking the cap never
	// perturbs the ISP placement drawn afterwards — a smaller-edges
	// variant differs from its parent only in the dropped edges.
	ExtraEdges int
}

// RandomWith generates the seeded pseudo-random graph variant described
// by opts; see Random for the family's shape.
func RandomWith(n int, opts RandomOpts) (*topology.Topology, error) {
	if n < 4 {
		return nil, errTooSmall("random", n, 4)
	}
	src := int64(n)*7919 + 17
	if opts.Seed != 0 {
		src += opts.Seed * 1_000_003
	}
	rng := rand.New(rand.NewSource(src))

	// Connected skeleton: attach router i to a uniformly chosen earlier
	// router, then sprinkle extra edges (duplicates are deduplicated by
	// the builder).
	var edges [][2]int
	for i := 2; i <= n; i++ {
		edges = append(edges, [2]int{1 + rng.Intn(i-1), i})
	}
	keep := n / 2
	if opts.ExtraEdges >= 0 && opts.ExtraEdges < keep {
		keep = opts.ExtraEdges
	}
	for k := 0; k < n/2; k++ {
		i := 1 + rng.Intn(n)
		j := 1 + rng.Intn(n)
		if i != j && k < keep {
			edges = append(edges, [2]int{i, j})
		}
	}

	attaches := []extAttachment{{router: 1, customer: true}}
	// Graphs past the legacy router bound use the wide addressing scheme,
	// whose ordinal space is wider too; graphs within it keep the legacy
	// cap so their artifacts stay byte-identical.
	ordCap := maxGraphAttachments
	if n > maxGraphRouters {
		ordCap = maxWideAttachments
	}
	ord := 0
	addISP := func(router int) {
		if ord >= ordCap {
			return // keep ordinals inside the addressing scheme
		}
		ord++
		attaches = append(attaches, extAttachment{router: router, ordinal: ord})
	}
	for i := 2; i <= n; i++ {
		if rng.Intn(10) < 7 {
			addISP(i)
			if rng.Intn(10) < 3 {
				addISP(i)
			}
		}
	}
	// The policy needs at least two attachment points to constrain.
	for i := 2; ord < 2 && i <= n; i++ {
		addISP(i)
	}
	return buildGraphExt(randomName(n), n, edges, attaches)
}
