package netgen

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netcfg"
	"repro/internal/topology"
)

// golden compares generator output against the checked-in JSON dictionary
// and description; regenerate with the tmp driver or update by hand —
// these are the machine-readable artifacts the Modularizer consumes, so
// drift is a behavioural change.
func golden(t *testing.T, name string, topo *topology.Topology) {
	t.Helper()
	data, err := topo.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := os.ReadFile(filepath.Join("testdata", name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(append(data, '\n')) != string(wantJSON) {
		t.Errorf("%s JSON drifted from golden:\n%s", name, data)
	}
	wantTxt, err := os.ReadFile(filepath.Join("testdata", name+".txt"))
	if err != nil {
		t.Fatal(err)
	}
	if Describe(topo) != string(wantTxt) {
		t.Errorf("%s description drifted from golden:\n%s", name, Describe(topo))
	}
}

func TestRingGolden(t *testing.T) {
	topo, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "ring-5", topo)
}

func TestFullMeshGolden(t *testing.T) {
	topo, err := FullMesh(4)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "full-mesh-4", topo)
}

func TestFatTreeGolden(t *testing.T) {
	topo, err := FatTree(2)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fat-tree-2", topo)
}

func TestRingShape(t *testing.T) {
	topo, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Routers) != 6 {
		t.Fatalf("routers = %d", len(topo.Routers))
	}
	for i := range topo.Routers {
		r := &topo.Routers[i]
		internal, external := 0, 0
		for _, nb := range r.Neighbors {
			if nb.External {
				external++
				if len(nb.Prefixes) == 0 {
					t.Errorf("%s external peer %s has no originated prefixes", r.Name, nb.PeerName)
				}
			} else {
				internal++
			}
		}
		if internal != 2 {
			t.Errorf("%s has %d internal neighbors, want 2 (a cycle)", r.Name, internal)
		}
		if external != 1 {
			t.Errorf("%s has %d external peers, want 1", r.Name, external)
		}
	}
	if topo.Routers[0].Neighbors[0].PeerName != "CUSTOMER" {
		t.Errorf("R1 first neighbor = %+v", topo.Routers[0].Neighbors[0])
	}
	if _, err := Ring(2); err == nil {
		t.Error("ring of 2 should fail")
	}
}

func TestFullMeshShape(t *testing.T) {
	topo, err := FullMesh(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range topo.Routers {
		r := &topo.Routers[i]
		internal := 0
		for _, nb := range r.Neighbors {
			if !nb.External {
				internal++
			}
		}
		if internal != 4 {
			t.Errorf("%s has %d internal neighbors, want 4", r.Name, internal)
		}
	}
	if _, err := FullMesh(2); err == nil {
		t.Error("mesh of 2 should fail")
	}
}

func TestFatTreeShape(t *testing.T) {
	topo, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 8 edge + 8 agg + 4 core.
	if len(topo.Routers) != 20 {
		t.Fatalf("routers = %d, want 20", len(topo.Routers))
	}
	customers, isps := 0, 0
	for i := range topo.Routers {
		r := &topo.Routers[i]
		for _, nb := range r.Neighbors {
			if !nb.External {
				continue
			}
			if IsCustomerPeer(nb.PeerName) {
				customers++
			} else {
				isps++
			}
			// Only edge routers (R1..R8) face the outside.
			if idx := routerIndex(r.Name); idx > 8 {
				t.Errorf("non-edge router %s has external peer %s", r.Name, nb.PeerName)
			}
		}
	}
	if customers != 1 || isps != 7 {
		t.Errorf("external peers = %d customers + %d ISPs, want 1 + 7", customers, isps)
	}
	if _, err := FatTree(3); err == nil {
		t.Error("odd k should fail")
	}
	if _, err := FatTree(0); err == nil {
		t.Error("k=0 should fail")
	}
}

// TestGraphSubnetsAreDisjoint checks the shared addressing scheme: every
// subnet appears on at most the two endpoints of one link.
func TestGraphSubnetsAreDisjoint(t *testing.T) {
	for _, make := range []func() (*topology.Topology, error){
		func() (*topology.Topology, error) { return Ring(9) },
		func() (*topology.Topology, error) { return FullMesh(7) },
		func() (*topology.Topology, error) { return FatTree(4) },
	} {
		topo, err := make()
		if err != nil {
			t.Fatal(err)
		}
		count := map[netcfg.Prefix]int{}
		for i := range topo.Routers {
			prefixes, err := topo.Routers[i].ConnectedPrefixes()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range prefixes {
				count[p]++
			}
		}
		for p, c := range count {
			if c > 2 {
				t.Errorf("%s: subnet %s appears on %d routers", topo.Name, p, c)
			}
		}
	}
}

func TestIsStar(t *testing.T) {
	star, _ := Star(7)
	if !IsStar(star) {
		t.Error("Star(7) should be a star")
	}
	for _, gen := range []func() (*topology.Topology, error){
		func() (*topology.Topology, error) { return Ring(5) },
		func() (*topology.Topology, error) { return FullMesh(4) },
		func() (*topology.Topology, error) { return FatTree(2) },
	} {
		topo, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		if IsStar(topo) {
			t.Errorf("%s should not be a star", topo.Name)
		}
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	want := []string{"star", "ring", "full-mesh", "fat-tree"}
	if len(names) != len(want) {
		t.Fatalf("scenarios = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("scenario[%d] = %q, want %q", i, names[i], n)
		}
	}
	for _, s := range Scenarios() {
		topo, err := s.Generate(s.DefaultSize)
		if err != nil {
			t.Errorf("%s default size: %v", s.Name, err)
			continue
		}
		if len(topo.Routers) < 2 {
			t.Errorf("%s generated %d routers", s.Name, len(topo.Routers))
		}
	}
	if _, err := Generate("moebius", 5); err == nil {
		t.Error("unknown scenario should error")
	}
	if topo, err := Generate("ring", 0); err != nil || topo.Name != "ring-8" {
		t.Errorf("default size: topo=%v err=%v", topo, err)
	}
}

func routerIndex(name string) int {
	var i int
	if _, err := fmt.Sscanf(name, "R%d", &i); err != nil {
		return 0
	}
	return i
}
