package netgen

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netcfg"
	"repro/internal/topology"
)

// golden compares generator output against the checked-in JSON dictionary
// and description; regenerate with the tmp driver or update by hand —
// these are the machine-readable artifacts the Modularizer consumes, so
// drift is a behavioural change.
func golden(t *testing.T, name string, topo *topology.Topology) {
	t.Helper()
	data, err := topo.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := os.ReadFile(filepath.Join("testdata", name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(append(data, '\n')) != string(wantJSON) {
		t.Errorf("%s JSON drifted from golden:\n%s", name, data)
	}
	wantTxt, err := os.ReadFile(filepath.Join("testdata", name+".txt"))
	if err != nil {
		t.Fatal(err)
	}
	if Describe(topo) != string(wantTxt) {
		t.Errorf("%s description drifted from golden:\n%s", name, Describe(topo))
	}
}

func TestRingGolden(t *testing.T) {
	topo, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "ring-5", topo)
}

func TestFullMeshGolden(t *testing.T) {
	topo, err := FullMesh(4)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "full-mesh-4", topo)
}

func TestFatTreeGolden(t *testing.T) {
	topo, err := FatTree(2)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fat-tree-2", topo)
}

func TestDualHomedGolden(t *testing.T) {
	topo, err := DualHomed(4)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "dual-homed-4", topo)
}

func TestMultiCustomerGolden(t *testing.T) {
	topo, err := MultiCustomer(5)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "multi-customer-5", topo)
}

func TestRandomGolden(t *testing.T) {
	topo, err := Random(8)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "random-8", topo)
}

func TestRingShape(t *testing.T) {
	topo, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Routers) != 6 {
		t.Fatalf("routers = %d", len(topo.Routers))
	}
	for i := range topo.Routers {
		r := &topo.Routers[i]
		internal, external := 0, 0
		for _, nb := range r.Neighbors {
			if nb.External {
				external++
				if len(nb.Prefixes) == 0 {
					t.Errorf("%s external peer %s has no originated prefixes", r.Name, nb.PeerName)
				}
			} else {
				internal++
			}
		}
		if internal != 2 {
			t.Errorf("%s has %d internal neighbors, want 2 (a cycle)", r.Name, internal)
		}
		if external != 1 {
			t.Errorf("%s has %d external peers, want 1", r.Name, external)
		}
	}
	if topo.Routers[0].Neighbors[0].PeerName != "CUSTOMER" {
		t.Errorf("R1 first neighbor = %+v", topo.Routers[0].Neighbors[0])
	}
	if _, err := Ring(2); err == nil {
		t.Error("ring of 2 should fail")
	}
}

func TestFullMeshShape(t *testing.T) {
	topo, err := FullMesh(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range topo.Routers {
		r := &topo.Routers[i]
		internal := 0
		for _, nb := range r.Neighbors {
			if !nb.External {
				internal++
			}
		}
		if internal != 4 {
			t.Errorf("%s has %d internal neighbors, want 4", r.Name, internal)
		}
	}
	if _, err := FullMesh(2); err == nil {
		t.Error("mesh of 2 should fail")
	}
}

func TestFatTreeShape(t *testing.T) {
	topo, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 8 edge + 8 agg + 4 core.
	if len(topo.Routers) != 20 {
		t.Fatalf("routers = %d, want 20", len(topo.Routers))
	}
	customers, isps := 0, 0
	for i := range topo.Routers {
		r := &topo.Routers[i]
		for _, nb := range r.Neighbors {
			if !nb.External {
				continue
			}
			if IsCustomerPeer(nb.PeerName) {
				customers++
			} else {
				isps++
			}
			// Only edge routers (R1..R8) face the outside.
			if idx := routerIndex(r.Name); idx > 8 {
				t.Errorf("non-edge router %s has external peer %s", r.Name, nb.PeerName)
			}
		}
	}
	if customers != 1 || isps != 7 {
		t.Errorf("external peers = %d customers + %d ISPs, want 1 + 7", customers, isps)
	}
	if _, err := FatTree(3); err == nil {
		t.Error("odd k should fail")
	}
	if _, err := FatTree(0); err == nil {
		t.Error("k=0 should fail")
	}
}

// TestDualHomedShape checks the dual-homed generator: every non-customer
// router holds exactly two ISP attachments, every attachment carries a
// distinct first-class ordinal, and subnets/ASes are keyed on the ordinal.
func TestDualHomedShape(t *testing.T) {
	topo, err := DualHomed(5)
	if err != nil {
		t.Fatal(err)
	}
	seenOrd := map[int]bool{}
	for i := range topo.Routers {
		r := &topo.Routers[i]
		isps := 0
		for _, nb := range r.Neighbors {
			if !nb.External || IsCustomerPeer(nb.PeerName) {
				continue
			}
			isps++
			if nb.Attachment <= 0 {
				t.Errorf("%s peer %s has no attachment ordinal", r.Name, nb.PeerName)
				continue
			}
			if seenOrd[nb.Attachment] {
				t.Errorf("attachment ordinal %d reused", nb.Attachment)
			}
			seenOrd[nb.Attachment] = true
			if want := uint32(ISPBaseAS + nb.Attachment); nb.PeerAS != want {
				t.Errorf("%s peer %s AS = %d, want %d", r.Name, nb.PeerName, nb.PeerAS, want)
			}
		}
		if r.Name == "R1" {
			if isps != 0 {
				t.Errorf("R1 has %d ISPs, want 0 (customer hub)", isps)
			}
		} else if isps != 2 {
			t.Errorf("%s has %d ISPs, want 2 (dual-homed)", r.Name, isps)
		}
	}
	if len(seenOrd) != 8 {
		t.Errorf("attachments = %d, want 8", len(seenOrd))
	}
	if _, err := DualHomed(2); err == nil {
		t.Error("dual-homed of 2 should fail")
	}
}

// TestMultiCustomerShape checks the multi-customer generator: max(2, n/3)
// distinct customers with distinct stub ASes and prefixes, ISPs on every
// remaining router.
func TestMultiCustomerShape(t *testing.T) {
	topo, err := MultiCustomer(7)
	if err != nil {
		t.Fatal(err)
	}
	customers := map[string]bool{}
	prefixes := map[string]bool{}
	isps := 0
	for _, ap := range topo.ExternalAttachments() {
		if IsCustomerPeer(ap.Peer.PeerName) {
			customers[ap.Peer.PeerName] = true
			for _, p := range ap.Peer.Prefixes {
				if prefixes[p] {
					t.Errorf("customer prefix %s reused", p)
				}
				prefixes[p] = true
			}
		} else {
			isps++
		}
	}
	if len(customers) != 2 || isps != 5 {
		t.Errorf("external peers = %d customers + %d ISPs, want 2 + 5", len(customers), isps)
	}
	if _, err := MultiCustomer(3); err == nil {
		t.Error("multi-customer of 3 should fail")
	}
}

// TestRandomDeterministicAndConnected checks the fuzz generator: the same
// size always yields the same graph, the graph is connected, and at least
// two ISP attachments exist with distinct ordinals.
func TestRandomDeterministicAndConnected(t *testing.T) {
	for _, n := range []int{4, 9, 17, 40} {
		a, err := Random(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Random(n)
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := a.Marshal()
		bj, _ := b.Marshal()
		if string(aj) != string(bj) {
			t.Errorf("random-%d is not deterministic", n)
		}
		// Connectivity over internal links.
		adj := map[string][]string{}
		for i := range a.Routers {
			r := &a.Routers[i]
			for _, nb := range r.Neighbors {
				if !nb.External {
					adj[r.Name] = append(adj[r.Name], nb.PeerName)
				}
			}
		}
		seen := map[string]bool{"R1": true}
		stack := []string{"R1"}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		if len(seen) != len(a.Routers) {
			t.Errorf("random-%d: only %d/%d routers reachable", n, len(seen), len(a.Routers))
		}
		ords := map[int]bool{}
		for _, ap := range a.ExternalAttachments() {
			if IsCustomerPeer(ap.Peer.PeerName) {
				continue
			}
			if ap.Peer.Attachment <= 0 || ords[ap.Peer.Attachment] {
				t.Errorf("random-%d: bad or duplicate ordinal %d", n, ap.Peer.Attachment)
			}
			ords[ap.Peer.Attachment] = true
		}
		if len(ords) < 2 {
			t.Errorf("random-%d: %d ISP attachments, want >= 2", n, len(ords))
		}
	}
}

// TestNoASCollisionAtScale is the regression test for the AS-numbering
// bug: with ISPBaseAS at the paper's original 100, R102 and the ISP on R2
// shared AS 102 and AS-path loop detection silently dropped the ISP's
// routes. Every external stub AS must now be distinct from every internal
// router AS (and from every other stub AS) up to the addressing bound.
func TestNoASCollisionAtScale(t *testing.T) {
	for _, gen := range []struct {
		name string
		make func() (*topology.Topology, error)
	}{
		{"ring-120", func() (*topology.Topology, error) { return Ring(120) }},
		{"star-120", func() (*topology.Topology, error) { return Star(120) }},
		{"dual-homed-60", func() (*topology.Topology, error) { return DualHomed(60) }},
		{"random-120", func() (*topology.Topology, error) { return Random(120) }},
	} {
		topo, err := gen.make()
		if err != nil {
			t.Fatalf("%s: %v", gen.name, err)
		}
		used := map[uint32]string{}
		claim := func(asn uint32, owner string) {
			if prev, dup := used[asn]; dup && prev != owner {
				t.Errorf("%s: AS %d shared by %s and %s", gen.name, asn, prev, owner)
			}
			used[asn] = owner
		}
		for i := range topo.Routers {
			claim(topo.Routers[i].ASN, topo.Routers[i].Name)
		}
		for _, ap := range topo.ExternalAttachments() {
			claim(ap.Peer.PeerAS, ap.Peer.PeerName)
		}
	}
}

// TestParseScenarioArg covers the CLI "name[:size]" shorthand.
func TestParseScenarioArg(t *testing.T) {
	if name, size, err := ParseScenarioArg("dual-homed:8"); err != nil ||
		name != "dual-homed" || size != 8 {
		t.Errorf("dual-homed:8 = (%q, %d, %v)", name, size, err)
	}
	if name, size, err := ParseScenarioArg("star"); err != nil || name != "star" || size != 0 {
		t.Errorf("star = (%q, %d, %v)", name, size, err)
	}
	for _, bad := range []string{"star:", "star:x", "star:-3", "moebius", "moebius:5"} {
		if _, _, err := ParseScenarioArg(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

// TestGraphSubnetsAreDisjoint checks the shared addressing scheme: every
// subnet appears on at most the two endpoints of one link.
func TestGraphSubnetsAreDisjoint(t *testing.T) {
	for _, make := range []func() (*topology.Topology, error){
		func() (*topology.Topology, error) { return Ring(9) },
		func() (*topology.Topology, error) { return FullMesh(7) },
		func() (*topology.Topology, error) { return FatTree(4) },
		func() (*topology.Topology, error) { return DualHomed(6) },
		func() (*topology.Topology, error) { return MultiCustomer(6) },
		func() (*topology.Topology, error) { return Random(12) },
	} {
		topo, err := make()
		if err != nil {
			t.Fatal(err)
		}
		count := map[netcfg.Prefix]int{}
		for i := range topo.Routers {
			prefixes, err := topo.Routers[i].ConnectedPrefixes()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range prefixes {
				count[p]++
			}
		}
		for p, c := range count {
			if c > 2 {
				t.Errorf("%s: subnet %s appears on %d routers", topo.Name, p, c)
			}
		}
	}
}

func TestIsStar(t *testing.T) {
	star, _ := Star(7)
	if !IsStar(star) {
		t.Error("Star(7) should be a star")
	}
	for _, gen := range []func() (*topology.Topology, error){
		func() (*topology.Topology, error) { return Ring(5) },
		func() (*topology.Topology, error) { return FullMesh(4) },
		func() (*topology.Topology, error) { return FatTree(2) },
		func() (*topology.Topology, error) { return DualHomed(4) },
		func() (*topology.Topology, error) { return MultiCustomer(5) },
		func() (*topology.Topology, error) { return Random(8) },
	} {
		topo, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		if IsStar(topo) {
			t.Errorf("%s should not be a star", topo.Name)
		}
	}
	// A star-shaped graph with a dual-homed spoke must NOT take the
	// hub-centric scheme: its community tags are keyed per router index,
	// the exact assumption dual-homing breaks.
	dualSpoke, _ := Star(5)
	r2 := dualSpoke.Router("R2")
	r2.Neighbors = append(r2.Neighbors, topology.NeighborSpec{
		PeerName: "ISP9", PeerIP: "20.9.0.2", PeerAS: ISPBaseAS + 9, External: true,
	})
	if IsStar(dualSpoke) {
		t.Error("a dual-homed spoke should disqualify the hub-centric star scheme")
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	want := []string{"star", "ring", "full-mesh", "fat-tree",
		"dual-homed", "multi-customer", "random"}
	if len(names) != len(want) {
		t.Fatalf("scenarios = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("scenario[%d] = %q, want %q", i, names[i], n)
		}
	}
	for _, s := range Scenarios() {
		topo, err := s.Generate(s.DefaultSize)
		if err != nil {
			t.Errorf("%s default size: %v", s.Name, err)
			continue
		}
		if len(topo.Routers) < 2 {
			t.Errorf("%s generated %d routers", s.Name, len(topo.Routers))
		}
	}
	if _, err := Generate("moebius", 5); err == nil {
		t.Error("unknown scenario should error")
	}
	if topo, err := Generate("ring", 0); err != nil || topo.Name != "ring-8" {
		t.Errorf("default size: topo=%v err=%v", topo, err)
	}
}

func routerIndex(name string) int {
	var i int
	if _, err := fmt.Sscanf(name, "R%d", &i); err != nil {
		return 0
	}
	return i
}
