package netgen

import "repro/internal/topology"

// Ring generates a cycle of n routers (n >= 3): R1 carries the customer
// attachment and every other router carries one ISP. Unlike the star,
// transit routes cross multiple internal hops, so the no-transit policy
// must hold at every ISP attachment point rather than at a single hub —
// the attachment-point local specification of lightyear.LocalNoTransitSpec.
func Ring(n int) (*topology.Topology, error) {
	if n < 3 {
		return nil, errTooSmall("ring", n, 3)
	}
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	edges = append(edges, [2]int{1, n})
	return buildGraph(ringName(n), n, edges, ispRange(2, n))
}
