package netgen

import (
	"fmt"

	"repro/internal/topology"
)

// FatTree generates a k-ary fat-tree (k even, k >= 2): k pods of k/2 edge
// and k/2 aggregation routers plus (k/2)^2 core routers, the classic
// data-center Clos. Router numbering is edge-first so R1 — the first edge
// router — carries the customer attachment; every other edge router
// carries one ISP; aggregation and core routers are internal-only. ISP
// routes therefore transit up to four internal hops (edge → agg → core →
// agg → edge), exercising community propagation end to end.
func FatTree(k int) (*topology.Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("fat-tree: k must be even and >= 2, got %d", k)
	}
	half := k / 2
	numEdge := k * half
	numAgg := k * half
	numCore := half * half
	n := numEdge + numAgg + numCore

	edgeIdx := func(pod, e int) int { return pod*half + e + 1 }
	aggIdx := func(pod, a int) int { return numEdge + pod*half + a + 1 }
	coreIdx := func(c int) int { return numEdge + numAgg + c + 1 }

	var edges [][2]int
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				edges = append(edges, [2]int{edgeIdx(pod, e), aggIdx(pod, a)})
			}
		}
		// Aggregation router a of every pod uplinks to the a-th group of
		// k/2 core routers.
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				edges = append(edges, [2]int{aggIdx(pod, a), coreIdx(a*half + c)})
			}
		}
	}
	return buildGraph(fatTreeName(k), n, edges, ispRange(2, numEdge))
}
