package netgen

import "repro/internal/topology"

// DualHomed generates a cycle of n routers (n >= 3) where R1 carries the
// customer attachment and every other router is dual-homed: two distinct
// ISPs attach to it, each a first-class attachment point with its own
// ordinal, community tag, subnet, and stub AS. This is the scenario the
// per-router spec model could not express — with router-index-keyed
// community tags, both ISPs on a router would share one tag and the
// no-transit policy between them would be unenforceable. Attachment
// ordinals are assigned in topology order: R2 holds attachments 1 and 2,
// R3 holds 3 and 4, and so on.
func DualHomed(n int) (*topology.Topology, error) {
	if n < 3 {
		return nil, errTooSmall("dual-homed", n, 3)
	}
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	edges = append(edges, [2]int{1, n})
	attaches := []extAttachment{{router: 1, customer: true}}
	ord := 0
	for i := 2; i <= n; i++ {
		for k := 0; k < 2; k++ {
			ord++
			attaches = append(attaches, extAttachment{router: i, ordinal: ord})
		}
	}
	return buildGraphExt(dualHomedName(n), n, edges, attaches)
}
