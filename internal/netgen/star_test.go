package netgen

import (
	"strings"
	"testing"

	"repro/internal/netcfg"
	"repro/internal/topology"
)

func TestStarShape(t *testing.T) {
	topo, err := Star(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Routers) != 7 {
		t.Fatalf("routers = %d", len(topo.Routers))
	}
	r1 := topo.Router("R1")
	if r1 == nil || r1.ASN != 1 {
		t.Fatalf("R1 = %+v", r1)
	}
	// Hub: one customer-facing interface plus one per spoke.
	if len(r1.Interfaces) != 7 {
		t.Errorf("R1 interfaces = %d, want 7", len(r1.Interfaces))
	}
	if len(r1.Neighbors) != 7 {
		t.Errorf("R1 neighbors = %d, want 7 (customer + 6 spokes)", len(r1.Neighbors))
	}
	if r1.Neighbors[0].PeerName != "CUSTOMER" || !r1.Neighbors[0].External {
		t.Errorf("R1 first neighbor = %+v", r1.Neighbors[0])
	}
	// Spokes mirror the paper's Table 3 literals: R7 at 7.0.0.2, AS 7.
	r7 := topo.Router("R7")
	if r7 == nil || r7.ASN != 7 || r7.RouterID != "7.0.0.2" {
		t.Fatalf("R7 = %+v", r7)
	}
	if r7.Neighbors[0].PeerIP != "7.0.0.1" || r7.Neighbors[0].PeerAS != 1 {
		t.Errorf("R7->R1 = %+v", r7.Neighbors[0])
	}
	if r7.Neighbors[1].PeerName != "ISP7" || !r7.Neighbors[1].External {
		t.Errorf("R7 ISP = %+v", r7.Neighbors[1])
	}
}

func TestStarMinimumSize(t *testing.T) {
	if _, err := Star(1); err == nil {
		t.Error("star of 1 should fail")
	}
	if _, err := Star(2); err != nil {
		t.Errorf("star of 2 should work: %v", err)
	}
}

func TestISPCommunityMatchesPaperScheme(t *testing.T) {
	// §4.2: "Community 100:1 is associated with routes incoming from R2,
	// 101:1 with those coming from R3 and so on."
	if ISPCommunity(2) != netcfg.MustCommunity("100:1") {
		t.Errorf("R2 tag = %s", ISPCommunity(2))
	}
	if ISPCommunity(3) != netcfg.MustCommunity("101:1") {
		t.Errorf("R3 tag = %s", ISPCommunity(3))
	}
	if ISPCommunity(6) != netcfg.MustCommunity("104:1") {
		t.Errorf("R6 tag = %s", ISPCommunity(6))
	}
}

func TestDescribeIsFormulaicAndComplete(t *testing.T) {
	topo, err := Star(3)
	if err != nil {
		t.Fatal(err)
	}
	text := Describe(topo)
	for _, want := range []string{
		"Router R1 has AS number 1 and router ID 1.0.0.1.",
		"Router R1 has interface eth0/0 with IP address 1.0.0.1/24.",
		"Router R1 is connected to external peer CUSTOMER at IP address 1.0.0.2 in AS 65500.",
		"Router R2 is connected to router R1 at IP address 2.0.0.1 in AS 1.",
		"Router R3 announces the networks: 3.0.0.0/24, 20.3.0.0/24.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("description missing %q\n%s", want, text)
		}
	}
}

func TestStarJSONRoundTrip(t *testing.T) {
	topo, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := topo.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := topology.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Routers) != 5 || back.Router("R3").ASN != 3 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestSubnetsAreDisjoint(t *testing.T) {
	topo, err := Star(9)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[netcfg.Prefix]string{}
	for i := range topo.Routers {
		r := &topo.Routers[i]
		prefixes, err := r.ConnectedPrefixes()
		if err != nil {
			t.Fatal(err)
		}
		for j, p := range prefixes {
			key := r.Name + "/" + r.Interfaces[j].Name
			if prev, dup := seen[p]; dup {
				// Shared link subnets appear on exactly the two endpoints.
				if !linked(prev, key) {
					t.Errorf("subnet %s reused by %s and %s", p, prev, key)
				}
				continue
			}
			seen[p] = key
		}
	}
}

// linked reports whether two interface keys are the two ends of one link
// (R1's spoke port and the spoke's eth0/0, by the generator's scheme).
func linked(a, b string) bool {
	return (strings.HasPrefix(a, "R1/") != strings.HasPrefix(b, "R1/")) ||
		(strings.Contains(a, "eth0/0") != strings.Contains(b, "eth0/0"))
}
