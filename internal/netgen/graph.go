package netgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netcfg"
	"repro/internal/topology"
)

// maxGraphRouters bounds the legacy addressing scheme: internal link
// subnets are 10.<i>.<j>.0/24 and ISP subnets 20.<i>.0.0/24, so router
// indices must fit in one octet. Larger graphs switch — whole-graph, so
// the two schemes never mix subnets — to the wide scheme below.
const maxGraphRouters = 250

// maxGraphAttachments bounds the attachment-ordinal addressing scheme for
// the same reason: ISP subnets are 20.<o>.0.0/24 and stub prefixes
// 150.<o>.0.0/16, so ordinals must fit in one octet too.
const maxGraphAttachments = 250

// Wide addressing scheme: graphs that exceed either legacy bound key
// internal links by edge index k (sorted (lo,hi) order) as
// 10.<k/256>.<k%256>.0/24, ISP attachments by ordinal o as
// 20.<o/256>.<o%256>.0/24 originating 150.<o/256>.<o%256>.0/24, and wide
// customers as 1.<o/256>.<o%256>.0/24 (the legacy customer keeps
// 1.0.0.0/24, which no wide ordinal produces). The switch is per graph,
// never per attachment: re-keying only ordinals past 250 would collide
// with the legacy subnets of ordinals below it. Everything downstream is
// spec-driven — community tags key on the ordinal, external stubs
// originate the prefixes the spec declares — so only this builder knows
// which scheme a graph uses.
const (
	// maxWideRouters bounds the wide scheme: router ASNs are the router
	// index, which must stay below every external AS base.
	maxWideRouters = 2000
	// maxWideAttachments bounds wide attachment ordinals: community tags
	// are uint16-keyed (98+o) and ordinals must fit two subnet octets.
	maxWideAttachments = 2000
	// maxWideEdges bounds the wide edge index to its two subnet octets.
	maxWideEdges = 65536
	// WideISPBaseAS is the wide scheme's ISP AS base. The legacy base of
	// 1000 sits below the wide router-index range, so wide graphs move the
	// ISPs above both the router ASNs and the customer AS block.
	WideISPBaseAS = 100000
)

// WideAttachmentPrefix returns the external prefix the ISP at attachment
// ordinal o originates under the wide addressing scheme.
func WideAttachmentPrefix(o int) netcfg.Prefix {
	return netcfg.MustPrefix(fmt.Sprintf("150.%d.%d.0/24", o/256, o%256))
}

// IsCustomerPeer reports whether an external peer name denotes a customer
// network (the generators' convention: customers are named CUSTOMER or
// CUSTOMER<c>, everything else external is an ISP).
func IsCustomerPeer(name string) bool { return strings.HasPrefix(name, "CUSTOMER") }

// IsStar reports whether a topology has the paper's Figure 4 star shape:
// a hub R1 holding the customer attachment, with every other router a
// spoke whose only internal neighbor is the hub and whose only external
// peer is a single ISP. The lightyear spec derivation keeps the paper's
// hub-centric no-transit policy for stars and uses the attachment-point
// policy for every other graph — including dual-homed or multi-customer
// graphs that are star-shaped internally: the hub-centric scheme keys
// community tags on spoke indices, which is exactly the per-router
// assumption the attachment model removes, so any explicit attachment
// ordinal or second external peering routes the topology to the
// attachment-point specification.
func IsStar(t *topology.Topology) bool {
	hub := t.Router("R1")
	if hub == nil || len(t.Routers) < 2 {
		return false
	}
	hubHasCustomer := false
	for _, nb := range hub.Neighbors {
		if nb.External {
			if !IsCustomerPeer(nb.PeerName) {
				return false // the star hub faces only the customer
			}
			hubHasCustomer = true
		}
	}
	if !hubHasCustomer {
		return false
	}
	for i := range t.Routers {
		r := &t.Routers[i]
		if r.Name == "R1" {
			continue
		}
		isps := 0
		for _, nb := range r.Neighbors {
			if nb.Attachment != 0 {
				return false // attachment-keyed peerings use the attachment spec
			}
			if nb.External {
				if IsCustomerPeer(nb.PeerName) {
					return false // a spoke-side customer breaks the hub scheme
				}
				isps++
			} else if nb.PeerName != "R1" {
				return false // a spoke-to-spoke link breaks the star
			}
		}
		if isps != 1 {
			return false // the hub scheme assumes exactly one ISP per spoke
		}
	}
	return true
}

// extAttachment is one external attachment the graph builder realizes on
// a router. The ordinal selects the addressing scheme:
//
//   - ordinal 0 (legacy, router-index keyed): the customer is named
//     CUSTOMER on subnet 1.0.0.0/24 with AS CustomerAS originating
//     CustomerPrefix; the ISP on Ri is named ISP<i> on 20.<i>.0.0/24 with
//     AS ISPBaseAS+i originating ISPPrefix(i). At most one legacy ISP fits
//     per router — which is the restriction the attachment model lifts.
//   - ordinal o > 0 (attachment-keyed): the customer is CUSTOMER<o> on
//     1.<o>.0.0/24 with AS CustomerAS+o originating CustomerPrefixAt(o);
//     the ISP is ISP<o> on 20.<o>.0.0/24 with AS ISPBaseAS+o originating
//     AttachmentPrefix(o), and the neighbor spec carries Attachment: o.
//     Ordinals key everything, so any number of attachments share a
//     router.
type extAttachment struct {
	router   int // 1-based router index
	ordinal  int // attachment ordinal; 0 = legacy router-index keying
	customer bool
}

// buildGraph constructs a topology over routers R1..Rn from an undirected
// edge list (1-based router indices), attaching the customer network to
// R1 and one legacy (router-index keyed) ISP to each router listed in
// ispRouters. It is the single-attachment-per-router wrapper over
// buildGraphExt that the pre-attachment generators (ring, full-mesh,
// fat-tree) use; their artifacts carry no attachment ordinals and
// serialize exactly as before the attachment model existed.
func buildGraph(name string, n int, edges [][2]int, ispRouters []int) (*topology.Topology, error) {
	attaches := []extAttachment{{router: 1, customer: true}}
	for _, i := range ispRouters {
		attaches = append(attaches, extAttachment{router: i})
	}
	return buildGraphExt(name, n, edges, attaches)
}

// buildGraphExt constructs a topology over routers R1..Rn from an
// undirected edge list and an explicit external-attachment list. The
// addressing scheme is regular and machine-derivable, like the star
// generator's:
//
//   - the internal link between Ri and Rj (i < j) uses 10.<i>.<j>.0/24
//     with Ri at .1 and Rj at .2;
//   - external links take the per-attachment subnets documented on
//     extAttachment (router at .1, peer at .2).
//
// Each router has AS number equal to its index, its router ID is its
// first interface address, and it announces every connected subnet. Per
// router, the interface order is customers first, then internal links by
// peer index, then ISPs — mirroring the star's ordering.
func buildGraphExt(name string, n int, edges [][2]int, attaches []extAttachment) (*topology.Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("%s: needs at least 2 routers, got %d", name, n)
	}
	// The addressing scheme is a whole-graph choice: legacy within the
	// one-octet bounds (byte-identical to every pre-wide artifact), wide
	// beyond them.
	maxOrd := 0
	for _, a := range attaches {
		if !a.customer && a.ordinal > maxOrd {
			maxOrd = a.ordinal
		}
	}
	wide := n > maxGraphRouters || maxOrd > maxGraphAttachments
	if n > maxWideRouters {
		return nil, fmt.Errorf("%s: at most %d routers supported by the addressing scheme, got %d",
			name, maxWideRouters, n)
	}
	// Normalize and validate the adjacency.
	adj := make([][]int, n+1)
	seen := map[[2]int]bool{}
	for _, e := range edges {
		i, j := e[0], e[1]
		if i > j {
			i, j = j, i
		}
		if i < 1 || j > n || i == j {
			return nil, fmt.Errorf("%s: invalid edge R%d-R%d", name, e[0], e[1])
		}
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	// The wide scheme keys link subnets by edge index in sorted edge
	// order, so a graph's link addressing is a function of its edge set
	// alone (stable across generator drawing order).
	edgeIdx := map[[2]int]int{}
	if wide {
		if len(seen) > maxWideEdges {
			return nil, fmt.Errorf("%s: at most %d links supported by the addressing scheme, got %d",
				name, maxWideEdges, len(seen))
		}
		all := make([][2]int, 0, len(seen))
		for e := range seen {
			all = append(all, e)
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a][0] != all[b][0] {
				return all[a][0] < all[b][0]
			}
			return all[a][1] < all[b][1]
		})
		for k, e := range all {
			edgeIdx[e] = k
		}
	}
	// linkNet returns the /24 base (first three octets) of the internal
	// link between Rlo and Rhi.
	linkNet := func(lo, hi int) string {
		if wide {
			k := edgeIdx[[2]int{lo, hi}]
			return fmt.Sprintf("10.%d.%d", k/256, k%256)
		}
		return fmt.Sprintf("10.%d.%d", lo, hi)
	}
	// ispNet returns the /24 base of an ISP attachment subnet; key is the
	// ordinal, or the router index for legacy-keyed ISPs.
	ispNet := func(key int) string {
		if wide {
			return fmt.Sprintf("20.%d.%d", key/256, key%256)
		}
		return fmt.Sprintf("20.%d.0", key)
	}
	// custNet returns the /24 base of a customer attachment subnet (the
	// legacy ordinal-0 customer keeps 1.0.0.0/24 under both schemes, and
	// no wide ordinal maps onto it).
	custNet := func(o int) string {
		if wide {
			return fmt.Sprintf("1.%d.%d", o/256, o%256)
		}
		return fmt.Sprintf("1.%d.0", o)
	}
	// Validate the attachment list: routers in range, ordinals distinct
	// per kind and in range, the legacy scheme's one-ISP-per-router and
	// customer-on-R1 invariants, and no mixing of the two ISP keying
	// schemes (their subnets would collide).
	customers := make(map[int][]extAttachment) // router -> customer attachments
	isps := make(map[int][]extAttachment)      // router -> ISP attachments
	ordinalISPs, legacyISPs := 0, 0
	seenOrd := map[[2]int]bool{} // (customer?1:0, ordinal)
	for _, a := range attaches {
		if a.router < 1 || a.router > n {
			return nil, fmt.Errorf("%s: attachment on nonexistent router R%d", name, a.router)
		}
		// Customer ordinals stay within the legacy bound under both
		// schemes: their originated prefixes (99.<o>.0.0/16) key on one
		// octet regardless of the graph's link addressing.
		ordBound := maxGraphAttachments
		if wide && !a.customer {
			ordBound = maxWideAttachments
		}
		if a.ordinal < 0 || a.ordinal > ordBound {
			return nil, fmt.Errorf("%s: attachment ordinal %d out of range [0,%d]",
				name, a.ordinal, ordBound)
		}
		if a.ordinal > 0 {
			k := [2]int{0, a.ordinal}
			if a.customer {
				k[0] = 1
			}
			if seenOrd[k] {
				return nil, fmt.Errorf("%s: duplicate attachment ordinal %d", name, a.ordinal)
			}
			seenOrd[k] = true
		}
		if a.customer {
			if a.ordinal == 0 && a.router != 1 {
				return nil, fmt.Errorf("%s: the legacy customer attachment belongs on R1, got R%d",
					name, a.router)
			}
			customers[a.router] = append(customers[a.router], a)
			continue
		}
		if a.ordinal == 0 {
			legacyISPs++
			if a.router == 1 {
				return nil, fmt.Errorf("%s: R1 holds the customer attachment, not a legacy ISP", name)
			}
			if len(isps[a.router]) > 0 {
				return nil, fmt.Errorf("%s: router R%d already has a legacy ISP; "+
					"use attachment ordinals for multi-homing", name, a.router)
			}
		} else {
			ordinalISPs++
		}
		isps[a.router] = append(isps[a.router], a)
	}
	if legacyISPs > 0 && ordinalISPs > 0 {
		return nil, fmt.Errorf("%s: legacy and attachment-keyed ISPs cannot share a graph", name)
	}

	t := &topology.Topology{Name: name}
	for i := 1; i <= n; i++ {
		sort.Ints(adj[i])
		r := topology.RouterSpec{Name: fmt.Sprintf("R%d", i), ASN: uint32(i)}
		ifcIdx := 0
		addIfc := func(addr string) {
			r.Interfaces = append(r.Interfaces, topology.InterfaceSpec{
				Name:    fmt.Sprintf("eth0/%d", ifcIdx),
				Address: addr + "/24",
			})
			ifcIdx++
		}
		for _, a := range customers[i] {
			if a.ordinal == 0 {
				addIfc("1.0.0.1")
				r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
					PeerName: "CUSTOMER", PeerIP: "1.0.0.2", PeerAS: CustomerAS,
					External: true, Prefixes: []string{CustomerPrefix().String()},
				})
				r.Networks = append(r.Networks, "1.0.0.0/24")
				continue
			}
			net := custNet(a.ordinal)
			addIfc(net + ".1")
			r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
				PeerName: fmt.Sprintf("CUSTOMER%d", a.ordinal),
				PeerIP:   net + ".2",
				PeerAS:   uint32(CustomerAS + a.ordinal),
				External: true,
				Prefixes: []string{CustomerPrefixAt(a.ordinal).String()},
			})
			r.Networks = append(r.Networks, net+".0/24")
		}
		for _, j := range adj[i] {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			self, peer := 1, 2
			if i == hi {
				self, peer = 2, 1
			}
			net := linkNet(lo, hi)
			addIfc(fmt.Sprintf("%s.%d", net, self))
			r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
				PeerName: fmt.Sprintf("R%d", j),
				PeerIP:   fmt.Sprintf("%s.%d", net, peer),
				PeerAS:   uint32(j),
			})
			r.Networks = append(r.Networks, net+".0/24")
		}
		for _, a := range isps[i] {
			key := a.ordinal
			var prefix netcfg.Prefix
			switch {
			case key == 0 && wide:
				key = i // legacy keying: the router index keys the ISP
				prefix = WideAttachmentPrefix(key)
			case key == 0:
				key = i
				prefix = ISPPrefix(i)
			case wide:
				prefix = WideAttachmentPrefix(key)
			default:
				prefix = AttachmentPrefix(key)
			}
			base := ISPBaseAS
			if wide {
				base = WideISPBaseAS
			}
			net := ispNet(key)
			addIfc(net + ".1")
			r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
				PeerName:   fmt.Sprintf("ISP%d", key),
				PeerIP:     net + ".2",
				PeerAS:     uint32(base + key),
				External:   true,
				Prefixes:   []string{prefix.String()},
				Attachment: a.ordinal,
			})
			r.Networks = append(r.Networks, net+".0/24")
		}
		if len(r.Interfaces) == 0 {
			return nil, fmt.Errorf("%s: router R%d is isolated", name, i)
		}
		r.RouterID = strings.TrimSuffix(r.Interfaces[0].Address, "/24")
		t.Routers = append(t.Routers, r)
	}
	return t, nil
}
