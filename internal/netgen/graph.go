package netgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// maxGraphRouters bounds the shared addressing scheme: internal link
// subnets are 10.<i>.<j>.0/24 and ISP subnets 20.<i>.0.0/24, so router
// indices must fit in one octet.
const maxGraphRouters = 250

// maxGraphAttachments bounds the attachment-ordinal addressing scheme for
// the same reason: ISP subnets are 20.<o>.0.0/24 and stub prefixes
// 150.<o>.0.0/16, so ordinals must fit in one octet too.
const maxGraphAttachments = 250

// IsCustomerPeer reports whether an external peer name denotes a customer
// network (the generators' convention: customers are named CUSTOMER or
// CUSTOMER<c>, everything else external is an ISP).
func IsCustomerPeer(name string) bool { return strings.HasPrefix(name, "CUSTOMER") }

// IsStar reports whether a topology has the paper's Figure 4 star shape:
// a hub R1 holding the customer attachment, with every other router a
// spoke whose only internal neighbor is the hub and whose only external
// peer is a single ISP. The lightyear spec derivation keeps the paper's
// hub-centric no-transit policy for stars and uses the attachment-point
// policy for every other graph — including dual-homed or multi-customer
// graphs that are star-shaped internally: the hub-centric scheme keys
// community tags on spoke indices, which is exactly the per-router
// assumption the attachment model removes, so any explicit attachment
// ordinal or second external peering routes the topology to the
// attachment-point specification.
func IsStar(t *topology.Topology) bool {
	hub := t.Router("R1")
	if hub == nil || len(t.Routers) < 2 {
		return false
	}
	hubHasCustomer := false
	for _, nb := range hub.Neighbors {
		if nb.External {
			if !IsCustomerPeer(nb.PeerName) {
				return false // the star hub faces only the customer
			}
			hubHasCustomer = true
		}
	}
	if !hubHasCustomer {
		return false
	}
	for i := range t.Routers {
		r := &t.Routers[i]
		if r.Name == "R1" {
			continue
		}
		isps := 0
		for _, nb := range r.Neighbors {
			if nb.Attachment != 0 {
				return false // attachment-keyed peerings use the attachment spec
			}
			if nb.External {
				if IsCustomerPeer(nb.PeerName) {
					return false // a spoke-side customer breaks the hub scheme
				}
				isps++
			} else if nb.PeerName != "R1" {
				return false // a spoke-to-spoke link breaks the star
			}
		}
		if isps != 1 {
			return false // the hub scheme assumes exactly one ISP per spoke
		}
	}
	return true
}

// extAttachment is one external attachment the graph builder realizes on
// a router. The ordinal selects the addressing scheme:
//
//   - ordinal 0 (legacy, router-index keyed): the customer is named
//     CUSTOMER on subnet 1.0.0.0/24 with AS CustomerAS originating
//     CustomerPrefix; the ISP on Ri is named ISP<i> on 20.<i>.0.0/24 with
//     AS ISPBaseAS+i originating ISPPrefix(i). At most one legacy ISP fits
//     per router — which is the restriction the attachment model lifts.
//   - ordinal o > 0 (attachment-keyed): the customer is CUSTOMER<o> on
//     1.<o>.0.0/24 with AS CustomerAS+o originating CustomerPrefixAt(o);
//     the ISP is ISP<o> on 20.<o>.0.0/24 with AS ISPBaseAS+o originating
//     AttachmentPrefix(o), and the neighbor spec carries Attachment: o.
//     Ordinals key everything, so any number of attachments share a
//     router.
type extAttachment struct {
	router   int // 1-based router index
	ordinal  int // attachment ordinal; 0 = legacy router-index keying
	customer bool
}

// buildGraph constructs a topology over routers R1..Rn from an undirected
// edge list (1-based router indices), attaching the customer network to
// R1 and one legacy (router-index keyed) ISP to each router listed in
// ispRouters. It is the single-attachment-per-router wrapper over
// buildGraphExt that the pre-attachment generators (ring, full-mesh,
// fat-tree) use; their artifacts carry no attachment ordinals and
// serialize exactly as before the attachment model existed.
func buildGraph(name string, n int, edges [][2]int, ispRouters []int) (*topology.Topology, error) {
	attaches := []extAttachment{{router: 1, customer: true}}
	for _, i := range ispRouters {
		attaches = append(attaches, extAttachment{router: i})
	}
	return buildGraphExt(name, n, edges, attaches)
}

// buildGraphExt constructs a topology over routers R1..Rn from an
// undirected edge list and an explicit external-attachment list. The
// addressing scheme is regular and machine-derivable, like the star
// generator's:
//
//   - the internal link between Ri and Rj (i < j) uses 10.<i>.<j>.0/24
//     with Ri at .1 and Rj at .2;
//   - external links take the per-attachment subnets documented on
//     extAttachment (router at .1, peer at .2).
//
// Each router has AS number equal to its index, its router ID is its
// first interface address, and it announces every connected subnet. Per
// router, the interface order is customers first, then internal links by
// peer index, then ISPs — mirroring the star's ordering.
func buildGraphExt(name string, n int, edges [][2]int, attaches []extAttachment) (*topology.Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("%s: needs at least 2 routers, got %d", name, n)
	}
	if n > maxGraphRouters {
		return nil, fmt.Errorf("%s: at most %d routers supported by the addressing scheme, got %d",
			name, maxGraphRouters, n)
	}
	// Normalize and validate the adjacency.
	adj := make([][]int, n+1)
	seen := map[[2]int]bool{}
	for _, e := range edges {
		i, j := e[0], e[1]
		if i > j {
			i, j = j, i
		}
		if i < 1 || j > n || i == j {
			return nil, fmt.Errorf("%s: invalid edge R%d-R%d", name, e[0], e[1])
		}
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	// Validate the attachment list: routers in range, ordinals distinct
	// per kind and in range, the legacy scheme's one-ISP-per-router and
	// customer-on-R1 invariants, and no mixing of the two ISP keying
	// schemes (their subnets would collide).
	customers := make(map[int][]extAttachment) // router -> customer attachments
	isps := make(map[int][]extAttachment)      // router -> ISP attachments
	ordinalISPs, legacyISPs := 0, 0
	seenOrd := map[[2]int]bool{} // (customer?1:0, ordinal)
	for _, a := range attaches {
		if a.router < 1 || a.router > n {
			return nil, fmt.Errorf("%s: attachment on nonexistent router R%d", name, a.router)
		}
		if a.ordinal < 0 || a.ordinal > maxGraphAttachments {
			return nil, fmt.Errorf("%s: attachment ordinal %d out of range [0,%d]",
				name, a.ordinal, maxGraphAttachments)
		}
		if a.ordinal > 0 {
			k := [2]int{0, a.ordinal}
			if a.customer {
				k[0] = 1
			}
			if seenOrd[k] {
				return nil, fmt.Errorf("%s: duplicate attachment ordinal %d", name, a.ordinal)
			}
			seenOrd[k] = true
		}
		if a.customer {
			if a.ordinal == 0 && a.router != 1 {
				return nil, fmt.Errorf("%s: the legacy customer attachment belongs on R1, got R%d",
					name, a.router)
			}
			customers[a.router] = append(customers[a.router], a)
			continue
		}
		if a.ordinal == 0 {
			legacyISPs++
			if a.router == 1 {
				return nil, fmt.Errorf("%s: R1 holds the customer attachment, not a legacy ISP", name)
			}
			if len(isps[a.router]) > 0 {
				return nil, fmt.Errorf("%s: router R%d already has a legacy ISP; "+
					"use attachment ordinals for multi-homing", name, a.router)
			}
		} else {
			ordinalISPs++
		}
		isps[a.router] = append(isps[a.router], a)
	}
	if legacyISPs > 0 && ordinalISPs > 0 {
		return nil, fmt.Errorf("%s: legacy and attachment-keyed ISPs cannot share a graph", name)
	}

	t := &topology.Topology{Name: name}
	for i := 1; i <= n; i++ {
		sort.Ints(adj[i])
		r := topology.RouterSpec{Name: fmt.Sprintf("R%d", i), ASN: uint32(i)}
		ifcIdx := 0
		addIfc := func(addr string) {
			r.Interfaces = append(r.Interfaces, topology.InterfaceSpec{
				Name:    fmt.Sprintf("eth0/%d", ifcIdx),
				Address: addr + "/24",
			})
			ifcIdx++
		}
		for _, a := range customers[i] {
			if a.ordinal == 0 {
				addIfc("1.0.0.1")
				r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
					PeerName: "CUSTOMER", PeerIP: "1.0.0.2", PeerAS: CustomerAS,
					External: true, Prefixes: []string{CustomerPrefix().String()},
				})
				r.Networks = append(r.Networks, "1.0.0.0/24")
				continue
			}
			addIfc(fmt.Sprintf("1.%d.0.1", a.ordinal))
			r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
				PeerName: fmt.Sprintf("CUSTOMER%d", a.ordinal),
				PeerIP:   fmt.Sprintf("1.%d.0.2", a.ordinal),
				PeerAS:   uint32(CustomerAS + a.ordinal),
				External: true,
				Prefixes: []string{CustomerPrefixAt(a.ordinal).String()},
			})
			r.Networks = append(r.Networks, fmt.Sprintf("1.%d.0.0/24", a.ordinal))
		}
		for _, j := range adj[i] {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			self, peer := 1, 2
			if i == hi {
				self, peer = 2, 1
			}
			addIfc(fmt.Sprintf("10.%d.%d.%d", lo, hi, self))
			r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
				PeerName: fmt.Sprintf("R%d", j),
				PeerIP:   fmt.Sprintf("10.%d.%d.%d", lo, hi, peer),
				PeerAS:   uint32(j),
			})
			r.Networks = append(r.Networks, fmt.Sprintf("10.%d.%d.0/24", lo, hi))
		}
		for _, a := range isps[i] {
			key := a.ordinal
			prefix := AttachmentPrefix(a.ordinal)
			if key == 0 {
				key = i // legacy: the router index keys the ISP
				prefix = ISPPrefix(i)
			}
			addIfc(fmt.Sprintf("20.%d.0.1", key))
			r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
				PeerName:   fmt.Sprintf("ISP%d", key),
				PeerIP:     fmt.Sprintf("20.%d.0.2", key),
				PeerAS:     uint32(ISPBaseAS + key),
				External:   true,
				Prefixes:   []string{prefix.String()},
				Attachment: a.ordinal,
			})
			r.Networks = append(r.Networks, fmt.Sprintf("20.%d.0.0/24", key))
		}
		if len(r.Interfaces) == 0 {
			return nil, fmt.Errorf("%s: router R%d is isolated", name, i)
		}
		r.RouterID = strings.TrimSuffix(r.Interfaces[0].Address, "/24")
		t.Routers = append(t.Routers, r)
	}
	return t, nil
}
