package netgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// maxGraphRouters bounds the shared addressing scheme: internal link
// subnets are 10.<i>.<j>.0/24 and ISP subnets 20.<i>.0.0/24, so router
// indices must fit in one octet.
const maxGraphRouters = 250

// IsCustomerPeer reports whether an external peer name denotes a customer
// network (the generators' convention: customers are named CUSTOMER,
// everything else external is an ISP).
func IsCustomerPeer(name string) bool { return strings.HasPrefix(name, "CUSTOMER") }

// IsStar reports whether a topology has the paper's Figure 4 star shape:
// a hub R1 holding the customer attachment, with every other router a
// spoke whose only internal neighbor is the hub. The lightyear spec
// derivation keeps the paper's hub-centric no-transit policy for stars
// and uses the attachment-point policy for every other graph.
func IsStar(t *topology.Topology) bool {
	hub := t.Router("R1")
	if hub == nil || len(t.Routers) < 2 {
		return false
	}
	hubHasCustomer := false
	for _, nb := range hub.Neighbors {
		if nb.External {
			if !IsCustomerPeer(nb.PeerName) {
				return false // the star hub faces only the customer
			}
			hubHasCustomer = true
		}
	}
	if !hubHasCustomer {
		return false
	}
	for i := range t.Routers {
		r := &t.Routers[i]
		if r.Name == "R1" {
			continue
		}
		for _, nb := range r.Neighbors {
			if !nb.External && nb.PeerName != "R1" {
				return false // a spoke-to-spoke link breaks the star
			}
		}
	}
	return true
}

// buildGraph constructs a topology over routers R1..Rn from an undirected
// edge list (1-based router indices), attaching the customer network to
// R1 and one ISP to each router listed in ispRouters. The addressing
// scheme is regular and machine-derivable, like the star generator's:
//
//   - the internal link between Ri and Rj (i < j) uses 10.<i>.<j>.0/24
//     with Ri at .1 and Rj at .2;
//   - the customer link uses 1.0.0.0/24 (router .1, customer .2, AS
//     CustomerAS, originating CustomerPrefix);
//   - the ISP link at Ri uses 20.<i>.0.0/24 (router .1, ISP<i> at .2, AS
//     ISPBaseAS+i, originating ISPPrefix(i)).
//
// Each router has AS number equal to its index, its router ID is its
// first interface address, and it announces every connected subnet.
func buildGraph(name string, n int, edges [][2]int, ispRouters []int) (*topology.Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("%s: needs at least 2 routers, got %d", name, n)
	}
	if n > maxGraphRouters {
		return nil, fmt.Errorf("%s: at most %d routers supported by the addressing scheme, got %d",
			name, maxGraphRouters, n)
	}
	// Normalize and validate the adjacency.
	adj := make([][]int, n+1)
	seen := map[[2]int]bool{}
	for _, e := range edges {
		i, j := e[0], e[1]
		if i > j {
			i, j = j, i
		}
		if i < 1 || j > n || i == j {
			return nil, fmt.Errorf("%s: invalid edge R%d-R%d", name, e[0], e[1])
		}
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	isISP := map[int]bool{}
	for _, i := range ispRouters {
		if i < 1 || i > n {
			return nil, fmt.Errorf("%s: ISP attachment on nonexistent router R%d", name, i)
		}
		if i == 1 {
			return nil, fmt.Errorf("%s: R1 holds the customer attachment, not an ISP", name)
		}
		isISP[i] = true
	}

	t := &topology.Topology{Name: name}
	for i := 1; i <= n; i++ {
		sort.Ints(adj[i])
		r := topology.RouterSpec{Name: fmt.Sprintf("R%d", i), ASN: uint32(i)}
		ifcIdx := 0
		addIfc := func(addr string) {
			r.Interfaces = append(r.Interfaces, topology.InterfaceSpec{
				Name:    fmt.Sprintf("eth0/%d", ifcIdx),
				Address: addr + "/24",
			})
			ifcIdx++
		}
		// Customer attachment first (R1), then internal links by peer
		// index, then the ISP attachment — mirroring the star's ordering.
		if i == 1 {
			addIfc("1.0.0.1")
			r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
				PeerName: "CUSTOMER", PeerIP: "1.0.0.2", PeerAS: CustomerAS,
				External: true, Prefixes: []string{CustomerPrefix().String()},
			})
			r.Networks = append(r.Networks, "1.0.0.0/24")
		}
		for _, j := range adj[i] {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			self, peer := 1, 2
			if i == hi {
				self, peer = 2, 1
			}
			addIfc(fmt.Sprintf("10.%d.%d.%d", lo, hi, self))
			r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
				PeerName: fmt.Sprintf("R%d", j),
				PeerIP:   fmt.Sprintf("10.%d.%d.%d", lo, hi, peer),
				PeerAS:   uint32(j),
			})
			r.Networks = append(r.Networks, fmt.Sprintf("10.%d.%d.0/24", lo, hi))
		}
		if isISP[i] {
			addIfc(fmt.Sprintf("20.%d.0.1", i))
			r.Neighbors = append(r.Neighbors, topology.NeighborSpec{
				PeerName: fmt.Sprintf("ISP%d", i),
				PeerIP:   fmt.Sprintf("20.%d.0.2", i),
				PeerAS:   uint32(ISPBaseAS + i),
				External: true,
				Prefixes: []string{ISPPrefix(i).String()},
			})
			r.Networks = append(r.Networks, fmt.Sprintf("20.%d.0.0/24", i))
		}
		if len(r.Interfaces) == 0 {
			return nil, fmt.Errorf("%s: router R%d is isolated", name, i)
		}
		r.RouterID = strings.TrimSuffix(r.Interfaces[0].Address, "/24")
		t.Routers = append(t.Routers, r)
	}
	return t, nil
}
