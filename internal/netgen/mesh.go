package netgen

import "repro/internal/topology"

// FullMesh generates a complete graph of n routers (n >= 3): every pair
// of routers shares a link, R1 carries the customer attachment, and every
// other router carries one ISP. The mesh is the densest scenario — each
// router peers with n-1 internal neighbors — which stresses the topology
// verifier and makes every ISP pair a one-hop transit temptation.
func FullMesh(n int) (*topology.Topology, error) {
	if n < 3 {
		return nil, errTooSmall("full-mesh", n, 3)
	}
	var edges [][2]int
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return buildGraph(meshName(n), n, edges, ispRange(2, n))
}
