// Package faultinject provides deterministic transport-layer fault
// injection for HTTP handlers: wrappers that sever connections at
// counted request boundaries, so tests and chaos harnesses (the
// mid-run-shard-kill experiments in the accel tests and `cofuzz
// -kill-shard`) can script exactly when a backend dies.
//
// Every wrapper kills the request with http.ErrAbortHandler, which
// net/http turns into a severed connection: the client sees a
// transport-layer failure — the same observable a crashed or unplugged
// server produces — never an HTTP error response, so the failure takes
// the client's failover and retry paths, not its served-error path.
package faultinject

import (
	"net/http"
	"sync/atomic"
)

// AbortAfter serves the first n requests normally and severs every
// request after them: a backend that works until it dies mid-run and
// never comes back. n <= 0 returns h unwrapped — the injection point
// stays in place, disarmed.
func AbortAfter(h http.Handler, n int64) http.Handler {
	if n <= 0 {
		return h
	}
	var served atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > n {
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	})
}

// AbortFirst severs the first n requests and serves everything after
// them: a transient fault — a backend that is briefly unreachable while
// it starts, restarts, or fails over — that a retrying client should
// ride out. n <= 0 returns h unwrapped.
func AbortFirst(h http.Handler, n int64) http.Handler {
	if n <= 0 {
		return h
	}
	var served atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) <= n {
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	})
}

// AbortEvery severs every nth request (the nth, 2nth, ...) and serves
// the rest: a flaky-but-alive backend that keeps recovering, the shape
// that must consume retry budget without being failed over for good.
// n <= 1 returns h unwrapped — severing every request is AbortAfter(h, 0)
// territory, not flakiness.
func AbortEvery(h http.Handler, n int64) http.Handler {
	if n <= 1 {
		return h
	}
	var served atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1)%n == 0 {
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	})
}
