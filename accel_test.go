package repro

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/batfish/rest"
)

// TestAcceleratedSynthesisByteIdentical is the acceptance gate for the
// verification acceleration layer: on every registry scenario, the
// incremental cache plus the concurrent suite scan must produce a
// transcript (and configs, and leverage) byte-identical to the pre-cache
// sequential loop's.
func TestAcceleratedSynthesisByteIdentical(t *testing.T) {
	for _, info := range Topologies() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			topo := mustTopo(t, info.Name, info.DefaultSize)
			baseline, err := Synthesize(topo, SynthesizeOptions{DisableVerifierCache: true})
			if err != nil {
				t.Fatal(err)
			}
			accelerated, err := Synthesize(mustTopo(t, info.Name, info.DefaultSize),
				SynthesizeOptions{SuiteParallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(baseline.Transcript, accelerated.Transcript) {
				t.Errorf("transcripts diverge:\nbaseline:\n%s\naccelerated:\n%s",
					baseline.Transcript, accelerated.Transcript)
			}
			if !reflect.DeepEqual(baseline.Configs, accelerated.Configs) {
				t.Error("final configurations diverge")
			}
			if baseline.Verified != accelerated.Verified ||
				baseline.Leverage() != accelerated.Leverage() {
				t.Errorf("outcome diverges: verified %v/%v leverage %v/%v",
					baseline.Verified, accelerated.Verified,
					baseline.Leverage(), accelerated.Leverage())
			}
			if accelerated.CacheStats == nil || accelerated.CacheStats.Hits == 0 {
				t.Errorf("cache saw no hits: %v", accelerated.CacheStats)
			}
		})
	}
}

// TestBatchedRESTSynthesisByteIdentical runs the same gate over the REST
// wrapper: the batched, cached loop against batfishd must reproduce the
// in-process sequential loop's transcript exactly.
func TestBatchedRESTSynthesisByteIdentical(t *testing.T) {
	srv := httptest.NewServer(rest.NewHandler())
	t.Cleanup(srv.Close)
	client := rest.NewClient(srv.URL)

	baseline, err := SynthesizeNoTransit(SynthesizeOptions{DisableVerifierCache: true})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := SynthesizeNoTransit(SynthesizeOptions{Verifier: client})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Transcript, batched.Transcript) {
		t.Errorf("transcripts diverge:\nbaseline:\n%s\nbatched:\n%s",
			baseline.Transcript, batched.Transcript)
	}
	if !batched.Verified {
		t.Error("batched REST run did not verify")
	}
	stats := batched.CacheStats
	if stats == nil || stats.Prefetches == 0 {
		t.Fatalf("batched run issued no prefetches: %v", stats)
	}
	// The batch transport's contract: at most one verification round-trip
	// per pipeline iteration (each prefetch is one round-trip), plus the
	// final global check.
	if calls := client.Calls(); calls > int64(stats.Prefetches)+1 {
		t.Errorf("REST round-trips = %d for %d iterations (+1 global), want ≤ %d",
			calls, stats.Prefetches, stats.Prefetches+1)
	}
}

// TestTranslationCacheByteIdentical runs the translation gate: cached and
// uncached loops must emit the same transcript.
func TestTranslationCacheByteIdentical(t *testing.T) {
	baseline, err := Translate(ExampleCiscoConfig(), TranslateOptions{DisableVerifierCache: true})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Translate(ExampleCiscoConfig(), TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Transcript, cached.Transcript) {
		t.Error("translation transcripts diverge")
	}
	if cached.CacheStats == nil {
		t.Error("cached translation reported no stats")
	}
}
