package repro

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/batfish/rest"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// shardFleet spins up n in-process shard servers and returns a sharded
// client over them. dieAfter > 0 arranges for the first shard to crash
// mid-run: after serving that many requests it aborts every connection
// without a response — the failure mode of a killed batfishd — so the
// ring must fail its work over onto the survivors. maxProto > 0 caps the
// fleet's batch dialect (rest.HandlerOptions.MaxBatchProtocol), modeling
// an old-binary fleet the client must degrade against.
func shardFleet(t *testing.T, n int, dieAfter int64, maxProto int) *rest.ShardedClient {
	t.Helper()
	endpoints := make([]string, n)
	for i := 0; i < n; i++ {
		handler := http.Handler(rest.NewHandlerOpts(rest.HandlerOptions{MaxBatchProtocol: maxProto}))
		if i == 0 {
			handler = faultinject.AbortAfter(handler, dieAfter)
		}
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		endpoints[i] = srv.URL
	}
	client, err := rest.NewShardedClient(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// requireSameRun asserts two synthesis results are byte-identical in
// every paper-visible dimension: transcript, final configurations,
// verification outcome, and leverage.
func requireSameRun(t *testing.T, label string, baseline, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(baseline.Transcript, got.Transcript) {
		t.Errorf("%s: transcripts diverge:\nbaseline:\n%s\ngot:\n%s",
			label, baseline.Transcript, got.Transcript)
	}
	if !reflect.DeepEqual(baseline.Configs, got.Configs) {
		t.Errorf("%s: final configurations diverge", label)
	}
	if baseline.Verified != got.Verified || baseline.Leverage() != got.Leverage() {
		t.Errorf("%s: outcome diverges: verified %v/%v leverage %v/%v",
			label, baseline.Verified, got.Verified,
			baseline.Leverage(), got.Leverage())
	}
}

// TestShardedSynthesisByteIdentical is the acceptance gate for the
// sharded verification backend: on every registry scenario, synthesis
// through a consistent-hash shard ring — one shard, three shards, and
// three shards with one killed mid-run — must reproduce the in-process
// sequential loop's transcript exactly. Results are pure functions of
// their inputs, so re-hashing a dead shard's checks onto the survivors
// must not change a byte.
func TestShardedSynthesisByteIdentical(t *testing.T) {
	// The ring's shard assignment depends on the test servers' random
	// ports, so whether the doomed shard is ever asked a second request —
	// and therefore visibly dies — varies per scenario. Each scenario
	// requires failover when the shard did die; the aggregate requires
	// that the kill actually fired somewhere, so the failover path is
	// always exercised by this gate. The aggregate only applies when every
	// scenario ran — a -run filter selecting one subtest must not trip it.
	failoversExercised, scenariosRun := 0, 0
	for _, info := range Topologies() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			scenariosRun++
			baseline, err := Synthesize(mustTopo(t, info.Name, info.DefaultSize),
				SynthesizeOptions{DisableVerifierCache: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []struct {
				label    string
				shards   int
				dieAfter int64
			}{
				{"1-shard", 1, 0},
				{"3-shard", 3, 0},
				// The doomed shard serves its first request, then aborts
				// every later connection: a crash in the middle of the
				// repair loop's iteration sequence. The ring must re-hash
				// its checks without changing the transcript.
				{"3-shard-one-killed", 3, 1},
			} {
				client := shardFleet(t, mode.shards, mode.dieAfter, 0)
				res, err := Synthesize(mustTopo(t, info.Name, info.DefaultSize),
					SynthesizeOptions{Verifier: client})
				if err != nil {
					t.Fatalf("%s: %v", mode.label, err)
				}
				requireSameRun(t, mode.label, baseline, res)
				if res.CacheStats == nil || res.CacheStats.Prefetches == 0 {
					t.Errorf("%s: sharded run issued no batched prefetches: %v",
						mode.label, res.CacheStats)
				}
				if mode.dieAfter > 0 {
					stats := client.Stats()
					if stats[0].Calls > mode.dieAfter && !stats[0].Dead {
						t.Errorf("%s: killed shard answered %d calls but was not failed over: %v",
							mode.label, stats[0].Calls, stats[0])
					}
					if stats[0].Dead {
						failoversExercised++
					}
					for i := 1; i < len(stats); i++ {
						if stats[i].Dead {
							t.Errorf("%s: survivor %d marked dead", mode.label, i)
						}
					}
				}
			}
		})
	}
	if scenariosRun == len(Topologies()) && failoversExercised == 0 {
		t.Error("no scenario exercised mid-run shard failover")
	}
}

// TestConfiguredBackendByteIdentical is the CI matrix hook: the workflow
// runs the suite once per backend, setting COSYNTH_TEST_BACKEND to
// "in-process", "sharded-N", or "sharded-N-v3" (a fleet capped at batch
// protocol 3, so the client's delta dialect is rejected and must degrade),
// and this test re-runs the byte-identical gate through that backend on
// every registry scenario. Unset, it skips — the dedicated tests above
// already cover the backends.
func TestConfiguredBackendByteIdentical(t *testing.T) {
	backend := os.Getenv("COSYNTH_TEST_BACKEND")
	if backend == "" {
		t.Skip("COSYNTH_TEST_BACKEND not set (CI matrix hook)")
	}
	shards, maxProto := 0, 0
	if s, ok := strings.CutPrefix(backend, "sharded-"); ok {
		if v3, ok := strings.CutSuffix(s, "-v3"); ok {
			s = v3
			maxProto = 3
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad COSYNTH_TEST_BACKEND %q", backend)
		}
		shards = n
	} else if backend != "in-process" {
		t.Fatalf("unknown COSYNTH_TEST_BACKEND %q", backend)
	}
	for _, info := range Topologies() {
		info := info
		t.Run(fmt.Sprintf("%s/%s", info.Name, backend), func(t *testing.T) {
			baseline, err := Synthesize(mustTopo(t, info.Name, info.DefaultSize),
				SynthesizeOptions{DisableVerifierCache: true, FullConfigPipeline: true})
			if err != nil {
				t.Fatal(err)
			}
			opts := SynthesizeOptions{}
			if shards > 0 {
				opts.Verifier = shardFleet(t, shards, 0, maxProto)
			}
			res, err := Synthesize(mustTopo(t, info.Name, info.DefaultSize), opts)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, backend, baseline, res)
		})
	}
}

// TestAcceleratedSynthesisByteIdentical is the acceptance gate for the
// verification acceleration layer: on every registry scenario, the
// incremental cache plus the concurrent suite scan plus the stanza-level
// incremental config pipeline must produce a transcript (and configs, and
// leverage) byte-identical to the pre-cache sequential loop rendering and
// parsing whole configurations from scratch (FullConfigPipeline).
func TestAcceleratedSynthesisByteIdentical(t *testing.T) {
	for _, info := range Topologies() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			topo := mustTopo(t, info.Name, info.DefaultSize)
			baseline, err := Synthesize(topo,
				SynthesizeOptions{DisableVerifierCache: true, FullConfigPipeline: true})
			if err != nil {
				t.Fatal(err)
			}
			accelerated, err := Synthesize(mustTopo(t, info.Name, info.DefaultSize),
				SynthesizeOptions{SuiteParallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, "accelerated", baseline, accelerated)
			if accelerated.CacheStats == nil || accelerated.CacheStats.Hits == 0 {
				t.Errorf("cache saw no hits: %v", accelerated.CacheStats)
			}

			// Telemetry leg: the same accelerated run with the full
			// observability surface armed — a metrics registry scraped in a
			// loop by a live /metrics client and a JSONL trace sink — must
			// still be byte-identical. Telemetry reports a run; it must
			// never steer one.
			reg := obs.NewRegistry()
			tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
			tracer, err := obs.OpenTrace(tracePath)
			if err != nil {
				t.Fatal(err)
			}
			msrv := httptest.NewServer(obs.Handler(reg))
			t.Cleanup(msrv.Close)
			stopScrape := make(chan struct{})
			scraped := make(chan error, 1)
			go func() {
				var last []byte
				for {
					resp, gerr := http.Get(msrv.URL + obs.MetricsPath)
					if gerr != nil {
						scraped <- gerr
						return
					}
					body, gerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if gerr != nil {
						scraped <- gerr
						return
					}
					last = body
					select {
					case <-stopScrape:
						if len(last) > 0 {
							scraped <- obs.ValidateExposition(bytes.NewReader(last))
						} else {
							scraped <- fmt.Errorf("scraper never saw a non-empty exposition")
						}
						return
					default:
					}
				}
			}()
			traced, err := Synthesize(mustTopo(t, info.Name, info.DefaultSize),
				SynthesizeOptions{SuiteParallelism: 8, Metrics: reg, Trace: tracer})
			close(stopScrape)
			if err != nil {
				t.Fatal(err)
			}
			if serr := <-scraped; serr != nil {
				t.Errorf("live mid-run scrape: %v", serr)
			}
			if cerr := tracer.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			requireSameRun(t, "traced+scraped", baseline, traced)
			tf, err := os.Open(tracePath)
			if err != nil {
				t.Fatal(err)
			}
			summary, err := obs.Summarize(tf)
			tf.Close()
			if err != nil {
				t.Fatalf("trace file does not summarize: %v", err)
			}
			if summary.Runs != 1 {
				t.Errorf("trace records %d run spans, want 1", summary.Runs)
			}
		})
	}
}

// TestBatchedRESTSynthesisByteIdentical runs the same gate over the REST
// wrapper: the batched, cached loop against batfishd must reproduce the
// in-process sequential loop's transcript exactly.
func TestBatchedRESTSynthesisByteIdentical(t *testing.T) {
	srv := httptest.NewServer(rest.NewHandler())
	t.Cleanup(srv.Close)
	client := rest.NewClient(srv.URL)

	baseline, err := SynthesizeNoTransit(SynthesizeOptions{DisableVerifierCache: true})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := SynthesizeNoTransit(SynthesizeOptions{Verifier: client})
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "batched", baseline, batched)
	if !batched.Verified {
		t.Error("batched REST run did not verify")
	}
	stats := batched.CacheStats
	if stats == nil || stats.Prefetches == 0 {
		t.Fatalf("batched run issued no prefetches: %v", stats)
	}
	// The batch transport's contract: at most one verification round-trip
	// per pipeline iteration (each prefetch is one round-trip), plus the
	// final global check.
	if calls := client.Calls(); calls > int64(stats.Prefetches)+1 {
		t.Errorf("REST round-trips = %d for %d iterations (+1 global), want ≤ %d",
			calls, stats.Prefetches, stats.Prefetches+1)
	}
}

// TestTranslationCacheByteIdentical runs the translation gate: cached and
// uncached loops must emit the same transcript.
func TestTranslationCacheByteIdentical(t *testing.T) {
	baseline, err := Translate(ExampleCiscoConfig(), TranslateOptions{DisableVerifierCache: true})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Translate(ExampleCiscoConfig(), TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Transcript, cached.Transcript) {
		t.Error("translation transcripts diverge")
	}
	if cached.CacheStats == nil {
		t.Error("cached translation reported no stats")
	}
}
