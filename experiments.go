package repro

import (
	"fmt"
	"strings"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/cisco"
	"repro/internal/core"
	"repro/internal/exampledata"
	"repro/internal/humanizer"
	"repro/internal/juniper"
	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/modularizer"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/topology"
	"repro/internal/translate"
)

// GeneratedPrompt is one row of Table 1 / Table 3: an error class and the
// rectification prompt the humanizer generates for it.
type GeneratedPrompt struct {
	Type   string
	Prompt string
}

// Table1RectificationPrompts regenerates Table 1: one sample humanized
// prompt per translation error class, produced by running the real
// verifiers against translations carrying exactly one seeded error.
func Table1RectificationPrompts() ([]GeneratedPrompt, error) {
	orig, warns := cisco.Parse(exampledata.CiscoExample)
	if len(warns) != 0 {
		return nil, fmt.Errorf("example config has warnings: %v", warns)
	}
	var out []GeneratedPrompt

	// Syntax error: the invalid length-ranged prefix-list entry.
	badSyntax := juniper.Print(translate.Golden(orig))
	badSyntax = strings.Replace(badSyntax, "policy-options {\n",
		"policy-options {\n    prefix-list our-networks {\n        1.2.3.0/24-32;\n    }\n", 1)
	if ws := juniper.Check(badSyntax); len(ws) > 0 {
		out = append(out, GeneratedPrompt{Type: "Syntax error", Prompt: humanizer.Syntax(ws[0])})
	}

	// The three Campion classes via single-error injections.
	classes := []struct {
		name  string
		class llm.TranslateError
	}{
		{"Structural mismatch", llm.ErrMissingImportPolicy},
		{"Attribute difference", llm.ErrOSPFCost},
		{"Policy behavior difference", llm.ErrPrefixLenMatch},
	}
	for _, c := range classes {
		model := llm.NewTranslator(llm.TranslateConfig{Seed: 1,
			Inject: map[llm.TranslateError]bool{c.class: true}})
		text, err := model.Complete([]llm.Message{{Role: llm.RoleHuman,
			Content: "Translate the following Cisco configuration into an equivalent " +
				"Juniper configuration.\n\n" + exampledata.CiscoExample}})
		if err != nil {
			return nil, err
		}
		trans, _ := juniper.Parse(text)
		findings := campion.Diff(orig, trans)
		if len(findings) == 0 {
			return nil, fmt.Errorf("seeded class %s produced no finding", c.class)
		}
		out = append(out, GeneratedPrompt{Type: c.name, Prompt: humanizer.Campion(findings[0])})
	}
	return out, nil
}

// Table2Row is one row of Table 2: a translation error class, its type,
// and whether the automated (generated) prompts alone fixed it.
type Table2Row struct {
	Error            string
	Type             string
	FixedByAutomated bool
}

// Table2TranslationErrors regenerates Table 2 by running the VPP loop on
// each error class in isolation and reporting whether a human prompt
// (beyond the task prompt) was needed.
func Table2TranslationErrors() ([]Table2Row, error) {
	types := map[llm.TranslateError]string{
		llm.ErrMissingLocalAS:      "Syntax error",
		llm.ErrPrefixListSyntax:    "Syntax error",
		llm.ErrMissingImportPolicy: "Structure mismatch",
		llm.ErrOSPFCost:            "Attribute error",
		llm.ErrOSPFPassive:         "Attribute error",
		llm.ErrWrongMED:            "Policy error",
		llm.ErrPrefixLenMatch:      "Policy error",
		llm.ErrRedistribution:      "Policy error",
	}
	var out []Table2Row
	for _, class := range llm.AllTranslateErrors() {
		model := llm.NewTranslator(llm.TranslateConfig{Seed: 1,
			Inject: map[llm.TranslateError]bool{class: true}})
		res, err := core.Translate(exampledata.CiscoExample, core.TranslateOptions{Model: model})
		if err != nil {
			return nil, err
		}
		if !res.Verified {
			return nil, fmt.Errorf("class %s did not converge", class)
		}
		_, human := res.Transcript.Counts()
		out = append(out, Table2Row{
			Error:            class.String(),
			Type:             types[class],
			FixedByAutomated: human <= 1, // only the task prompt
		})
	}
	return out, nil
}

// Table3RectificationPrompts regenerates Table 3: sample prompts for the
// three local-synthesis error classes, produced by the real verifiers.
func Table3RectificationPrompts() ([]GeneratedPrompt, error) {
	topo, err := netgen.Star(7)
	if err != nil {
		return nil, err
	}
	var out []GeneratedPrompt

	// Syntax: the community-list regex entry (Table 3's example).
	badCfg := "hostname R6\nip community-list standard COMM_LIST_R6_OUT permit .+\n"
	if ws := batfish.CheckSyntax(badCfg); len(ws) > 0 {
		out = append(out, GeneratedPrompt{Type: "Syntax error", Prompt: humanizer.Syntax(ws[0])})
	}

	// Topology: every Table 3 topology-error variant against R1's spec.
	spec := topo.Router("R1")
	variants := []struct {
		name   string
		mutate func(d *netcfg.Device)
	}{
		{"wrong interface address", func(d *netcfg.Device) { d.Interfaces[0].Address.Addr++ }},
		{"wrong local AS", func(d *netcfg.Device) { d.BGP.ASN = 3 }},
		{"wrong router ID", func(d *netcfg.Device) { d.BGP.RouterID++ }},
		{"missing neighbor", func(d *netcfg.Device) { d.BGP.Neighbors = d.BGP.Neighbors[1:] }},
		{"missing network", func(d *netcfg.Device) { d.BGP.Networks = d.BGP.Networks[1:] }},
		{"network not connected", func(d *netcfg.Device) {
			d.BGP.Networks = append(d.BGP.Networks, netcfg.MustPrefix("7.7.7.0/24"))
		}},
		{"extra neighbor", func(d *netcfg.Device) {
			n := d.BGP.EnsureNeighbor(netcfg.MustPrefix("9.9.9.9/32").Addr)
			n.RemoteAS = 9
		}},
	}
	for _, v := range variants {
		dev := specDevice(spec)
		v.mutate(dev)
		finds := topology.Verify(spec, dev)
		if len(finds) == 0 {
			return nil, fmt.Errorf("topology variant %q produced no finding", v.name)
		}
		out = append(out, GeneratedPrompt{Type: "Topology error (" + v.name + ")",
			Prompt: humanizer.Topology(finds[0])})
	}

	// Semantic: the AND/OR egress filter counterexample.
	model := llm.NewSynthesizer(llm.DefaultSynthConfig())
	res, err := core.Synthesize(topo, core.SynthOptions{Model: model,
		SkipGlobalCheck: true, MaxIterations: 3, MaxAttemptsPerFinding: 100,
		Human: core.NoHuman{}})
	if err == nil {
		_ = res
	}
	// Re-derive the semantic prompt directly from the erroneous R1 config.
	reqs := lightyear.NoTransitSpec(topo)
	synth := llm.NewSynthesizer(llm.DefaultSynthConfig())
	r1cfg, err := r1Config(topo, synth)
	if err != nil {
		return nil, err
	}
	dev, _ := batfish.ParseConfig(r1cfg)
	for _, req := range reqs {
		if req.Kind != lightyear.EgressDropsCommunity {
			continue
		}
		if v, bad := lightyear.Check(dev, req); bad {
			out = append(out, GeneratedPrompt{Type: "Semantic error",
				Prompt: humanizer.Semantic(v)})
			break
		}
	}
	return out, nil
}

// specDevice builds a config IR that exactly satisfies a router spec.
func specDevice(spec *topology.RouterSpec) *netcfg.Device {
	dev := netcfg.NewDevice(spec.Name, netcfg.VendorCisco)
	for _, ifc := range spec.Interfaces {
		p, err := netcfg.ParsePrefix(ifc.Address)
		if err != nil {
			continue
		}
		slash := strings.IndexByte(ifc.Address, '/')
		addr, _ := netcfg.ParseIP(ifc.Address[:slash])
		i := dev.EnsureInterface(ifc.Name)
		i.Address = netcfg.Prefix{Addr: addr, Len: p.Len}
		i.HasAddress = true
	}
	b := dev.EnsureBGP(spec.ASN)
	if id, err := netcfg.ParseIP(spec.RouterID); err == nil {
		b.RouterID = id
	}
	for _, nb := range spec.Neighbors {
		if ip, err := netcfg.ParseIP(nb.PeerIP); err == nil {
			b.EnsureNeighbor(ip).RemoteAS = nb.PeerAS
		}
	}
	for _, n := range spec.Networks {
		if p, err := netcfg.ParsePrefix(n); err == nil {
			b.Networks = append(b.Networks, p)
		}
	}
	return dev
}

// r1Config asks a fresh synthesizer for R1's (erroneous) config.
func r1Config(topo *topology.Topology, synth *llm.Synthesizer) (string, error) {
	for _, task := range modularTasks(topo) {
		if task.router != "R1" {
			continue
		}
		return synth.Complete([]llm.Message{{Role: llm.RoleAutomated, Content: task.prompt}})
	}
	return "", fmt.Errorf("no R1 task")
}

type simpleTask struct{ router, prompt string }

func modularTasks(topo *topology.Topology) []simpleTask {
	var out []simpleTask
	for _, t := range modularizer.Tasks(topo) {
		out = append(out, simpleTask{t.Router, t.Prompt})
	}
	return out
}
