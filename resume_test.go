package repro

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/llm"
)

// The checkpoint/resume acceptance gate: a run killed mid-loop and
// restarted with Resume must produce a byte-identical final transcript —
// same prompts, same configurations, same leverage — as a run that was
// never interrupted. The kill is injected through the deterministic
// in-process crash seam (CheckpointOptions.AbortAfterSaves), which leaves
// exactly the on-disk state a SIGKILL immediately after a completed
// snapshot would; the CI smoke job repeats the experiment with a real
// SIGKILL on a separate process.

// synthCheckpointed runs core.Synthesize with the default simulated LLM —
// the same model repro.Synthesize builds — plus a checkpoint config.
func synthCheckpointed(t *testing.T, name string, size int, path string,
	abortAfter int, resume bool, parallelism int) (*Result, error) {
	t.Helper()
	return core.Synthesize(mustTopo(t, name, size), core.SynthOptions{
		Model:       llm.NewSynthesizer(llm.DefaultSynthConfig()),
		Parallelism: parallelism,
		Checkpoint: &core.CheckpointOptions{
			Path:            path,
			Resume:          resume,
			RunKey:          "resume-test:" + name,
			AbortAfterSaves: abortAfter,
		},
	})
}

// TestSequentialResumeByteIdenticalOnScenarios kills a sequential
// synthesis run at the second checkpoint write — mid-repair, after the
// first iteration's exchanges — then resumes it, on every registry
// scenario. The resumed run's transcript must match an uninterrupted
// baseline byte for byte.
func TestSequentialResumeByteIdenticalOnScenarios(t *testing.T) {
	for _, info := range Topologies() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			baseline, err := Synthesize(mustTopo(t, info.Name, info.DefaultSize),
				SynthesizeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ckPath := filepath.Join(t.TempDir(), "checkpoint.json")
			_, err = synthCheckpointed(t, info.Name, info.DefaultSize, ckPath, 2, false, 0)
			if !errors.Is(err, core.ErrCheckpointAborted) {
				t.Fatalf("crash seam did not fire: err = %v", err)
			}
			resumed, err := synthCheckpointed(t, info.Name, info.DefaultSize, ckPath, 0, true, 0)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, info.Name+" resumed", baseline, resumed)
		})
	}
}

// TestRepeatedCrashResumeConverges kills the same star-7 run over and
// over — every restart dies two snapshots after the previous one — until
// it finally completes. However many times the coordinator crashes, the
// final transcript must be the uninterrupted run's.
func TestRepeatedCrashResumeConverges(t *testing.T) {
	baseline, err := SynthesizeNoTransit(SynthesizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(t.TempDir(), "checkpoint.json")
	var final *Result
	crashes := 0
	for attempt := 0; attempt < 200; attempt++ {
		res, err := synthCheckpointed(t, "star", 7, ckPath, 2, attempt > 0, 0)
		if err == nil {
			final = res
			break
		}
		if !errors.Is(err, core.ErrCheckpointAborted) {
			t.Fatal(err)
		}
		crashes++
	}
	if final == nil {
		t.Fatal("run never completed despite 200 resume attempts")
	}
	if crashes == 0 {
		t.Fatal("crash seam never fired")
	}
	t.Logf("converged after %d crashes", crashes)
	requireSameRun(t, "repeatedly crashed star-7", baseline, final)
}

// TestParallelResumeByteIdentical kills a parallel synthesis run after
// two routers' snapshots landed, then resumes it: the completed routers'
// outcomes are reused verbatim, the rest are repaired fresh, and the
// topology-order merge must reproduce the uninterrupted parallel
// transcript exactly.
func TestParallelResumeByteIdentical(t *testing.T) {
	baseline, err := core.Synthesize(mustTopo(t, "ring", 6), core.SynthOptions{
		Model:       llm.NewSynthesizer(llm.DefaultSynthConfig()),
		Parallelism: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(t.TempDir(), "checkpoint.json")
	_, err = synthCheckpointed(t, "ring", 6, ckPath, 2, false, 3)
	if !errors.Is(err, core.ErrCheckpointAborted) {
		t.Fatalf("crash seam did not fire: err = %v", err)
	}
	resumed, err := synthCheckpointed(t, "ring", 6, ckPath, 0, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "parallel ring-6 resumed", baseline, resumed)
}

// TestTranslateResumeByteIdentical is the same experiment on the
// translation pipeline: kill the repair loop mid-run, resume, compare
// against an uninterrupted baseline.
func TestTranslateResumeByteIdentical(t *testing.T) {
	cisco := ExampleCiscoConfig()
	baseline, err := Translate(cisco, TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(t.TempDir(), "checkpoint.json")
	run := func(abortAfter int, resume bool) (*Result, error) {
		return core.Translate(cisco, core.TranslateOptions{
			Model: llm.NewTranslator(llm.DefaultTranslateConfig()),
			Checkpoint: &core.CheckpointOptions{
				Path:            ckPath,
				Resume:          resume,
				RunKey:          "resume-test:translate",
				AbortAfterSaves: 2,
			},
		})
	}
	if _, err := run(2, false); !errors.Is(err, core.ErrCheckpointAborted) {
		t.Fatalf("crash seam did not fire: err = %v", err)
	}
	resumed, err := core.Translate(cisco, core.TranslateOptions{
		Model: llm.NewTranslator(llm.DefaultTranslateConfig()),
		Checkpoint: &core.CheckpointOptions{
			Path:   ckPath,
			Resume: true,
			RunKey: "resume-test:translate",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "translate resumed", baseline, resumed)
}

// TestResumeRefusesDifferentRun starts a checkpointed run under one set
// of coordinates and tries to resume it under another (different seed):
// the run-key check must refuse rather than silently fork the run.
func TestResumeRefusesDifferentRun(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "checkpoint.json")
	if _, err := Translate(ExampleCiscoConfig(), TranslateOptions{
		CheckpointPath: ckPath,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := Translate(ExampleCiscoConfig(), TranslateOptions{
		Seed:           2,
		CheckpointPath: ckPath,
		Resume:         true,
	})
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("resume into different coordinates not refused: err = %v", err)
	}
}

// TestResumeCompletedRunReplays resumes a checkpoint left behind by a run
// that finished: the restored loop immediately re-verifies clean and the
// result matches the original — a stale checkpoint file is harmless.
func TestResumeCompletedRunReplays(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "checkpoint.json")
	topo := mustTopo(t, "dual-homed", 0)
	first, err := Synthesize(topo, SynthesizeOptions{CheckpointPath: ckPath})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Synthesize(mustTopo(t, "dual-homed", 0),
		SynthesizeOptions{CheckpointPath: ckPath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "stale-checkpoint resume", first, again)
}

// TestDurableCacheWarmRestart points two fresh processes' worth of runs
// at one cache directory: the second run must answer part of its
// verification load from disk (DiskHits > 0) while producing the same
// transcript — the durable tier changes cost, never results.
func TestDurableCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cold, err := SynthesizeNoTransit(SynthesizeOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheStats == nil || cold.CacheStats.DiskWrites == 0 {
		t.Fatalf("cold run persisted nothing: %+v", cold.CacheStats)
	}
	warm, err := SynthesizeNoTransit(SynthesizeOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats == nil || warm.CacheStats.DiskHits == 0 {
		t.Fatalf("warm run never hit the disk tier: %+v", warm.CacheStats)
	}
	requireSameRun(t, "warm restart", cold, warm)
}
