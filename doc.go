// Package repro is COSYNTH: a reproduction of "What do LLMs need to
// Synthesize Correct Router Configurations?" (HotNets 2023) as a Go
// library.
//
// The paper proposes Verified Prompt Programming (VPP): pair an LLM with a
// suite of network-configuration verifiers, convert verifier findings into
// natural-language correction prompts automatically (a "humanizer"), and
// measure leverage — automated prompts per human prompt.
//
// # Architecture: one pipeline, many stages
//
// Both use cases run on a single stage-driven repair engine
// (internal/core). A pipeline is a declarative list of stages, each a
// verifier pass that inspects the current configurations and reports the
// first outstanding Finding — its stable identity, target configuration,
// and humanized rectification prompt. The shared RunPipeline driver
// executes Figure 3's loop over any stage list: find a finding, prompt
// the model, bill the finding's attempt budget, punt to the human oracle
// when the budget is exhausted, stop when every stage is clean. Stage
// order encodes the paper's masking order (syntax before structure before
// semantics, §3.1).
//
//   - Translation (§3) composes two stages: Batfish-style syntax
//     checking, then Campion-style semantic diffing.
//   - Synthesis (§4) composes three: per-router syntax, the topology
//     verifier, and the Lightyear-style local-policy checker — followed
//     by the whole-network BGP simulation as the global check.
//
// # The per-attachment spec model
//
// The unit of specification is the external attachment point — a
// (router, neighbor) pair — not the router. Topology dictionaries list
// attachments first-class: external neighbors may carry an attachment
// ordinal (topology.NeighborSpec.Attachment) that keys the community
// tag, the ISP subnet, and the stub AS, and every derived obligation
// (lightyear.Requirement) carries an AttachmentRef identity naming the
// router, the peer, and the flow direction it constrains. Community
// allocation follows the same precedence everywhere
// (lightyear.Attachment.Community): the attachment ordinal when the
// dictionary declares one, the legacy router index on pre-attachment
// generated graphs, the peer AS on hand-built dictionaries. Because tags
// are per attachment, a router may be homed to any number of ISPs — each
// attachment gets its own ingress tagging policy, its own egress filter,
// and obligations against every other attachment including its
// same-router siblings — and customers may attach anywhere, in any
// number.
//
// The derivation (internal/lightyear.SpecFor) keeps the paper's
// hub-centric specification for the Figure 4 star (tag and filter at R1,
// byte-identical to the seed) and uses the attachment-point
// specification for every other graph: each attachment tags incoming
// routes with its own community at ingress and at egress denies routes
// carrying any other attachment's tag. Because the BGP simulation
// propagates communities across internal hops, the local obligations
// compose into the global no-transit guarantee on any graph
// (CoverageComplete is the proof obligation; the seeded random-graph
// fuzz test exercises it end to end).
//
// # Topology scenario registry
//
// internal/netgen registers seven topology families, each emitting the
// same two machine-readable artifacts the Modularizer consumes: the JSON
// dictionary and the formulaic natural-language description (which
// states per-peer attachment facts — ordinal and originated prefixes —
// on attachment-keyed graphs). The single-attachment families are the
// paper's Figure 4 star plus ring, full-mesh, and k-ary fat-tree. The
// attachment-keyed families the per-attachment model unlocks are
// dual-homed (a ring whose every non-customer router is homed to two
// ISPs), multi-customer (a full mesh with max(2, n/3) customer networks,
// each a distinct stub AS and prefix), and random (a connected
// pseudo-random graph, seeded by its size for reproducibility, mixing
// single- and dual-homed ISPs — the fuzzing surface for the spec model).
// CLIs accept the name:size shorthand: cosynth -topo dual-homed:8.
//
// # Verification acceleration layer
//
// The paper's loop re-verifies the whole network after every prompt; this
// library keeps that loop's transcripts while removing its redundant work
// through three cooperating layers, each independently optional:
//
// Cache. Every per-config check — syntax, topology, local policy,
// translation diff — is memoized by core.CachedVerifier, keyed by a hash
// of the check's inputs (config text plus spec/requirement, including
// the requirement's per-attachment identity, so each attachment is its
// own unit of incremental re-verification). A pipeline iteration
// therefore only re-verifies the attachment-scoped checks of the router
// whose configuration the last prompt changed; every other result is a
// cache hit.
// Beneath it, one netcfg.ParseCache per run (threaded through
// internal/batfish into the cisco and juniper parsers' single-parse
// ParseAndCheck entry points) parses each configuration revision exactly
// once, no matter how many stages, requirements, and iterations inspect
// it — including the final BGP simulation. Results are pure functions of
// their inputs, so transcripts are byte-identical with the cache on or
// off (TestAcceleratedSynthesisByteIdentical pins this on every registry
// scenario); benchmark E14 measures the win.
//
// Concurrent suite. Within one pipeline iteration, a stage's per-router
// and per-requirement checks are independent, so SuiteParallelism fans
// them onto a bounded worker pool. Selection is deterministic: the lowest
// topology-order finding wins, exactly what the sequential scan would
// have reported, so transcripts stay byte-identical. This is the only
// lever that speeds up the star hub, where every policy concentrates on
// one router and per-router parallelism has nothing to split.
//
// Batch transport. When the verifier is remote (rest.Client against
// batfishd), each iteration first enumerates every outstanding check
// across all stages and ships the not-yet-cached ones as a single
// /v1/batch round-trip (CachedVerifier.Prefetch through the backend
// seam); the stage scan then reads pure cache hits. One round-trip per
// iteration replaces one per check — benchmark E15 measures it on the
// fat-tree — and the client falls back to per-check calls against servers
// that predate the endpoint. The server evaluates a batch on its own
// worker pool with a request-scoped parse cache (or a shared one, below).
//
// # Distributed verification
//
// All verification dispatches through one seam, suite.Backend: a batch of
// independent checks in, positional results out, plus a capability probe
// (does batching amortize transport cost). The in-process suite
// (suite.CheckerBackend), a single REST endpoint (rest.Client), and a
// shard fleet (rest.ShardedClient) are interchangeable behind it —
// core.NewCachedVerifier resolves whichever the supplied verifier
// supports, and the pipeline's per-iteration prefetch enumerates its
// outstanding checks against the seam without knowing the transport.
// Because every check is a pure function of its inputs, transcripts are
// byte-identical whichever backend serves them
// (TestShardedSynthesisByteIdentical pins this on every registry
// scenario, for 1 shard, 3 shards, and 3 shards with one killed mid-run).
//
// The hash ring. rest.ShardedClient consistent-hashes every check over N
// batfishd endpoints (64 virtual nodes per shard, 64-bit FNV-1a, so every
// client agrees on the assignment). The distribution key
// (suite.ShardKey) is the check's configuration text — all of one
// revision's whole-config checks stick to one shard and share its parse —
// except that a local-policy check appends its attachment identity, so
// the obligations of a multi-homed router spread independently: the
// attachment is the sharding unit, exactly as it is the unit of
// incremental re-verification. Each iteration's prefetch becomes one
// batched round-trip per shard, issued concurrently (benchmark E16
// measures 1 vs 3 shards), with per-shard round-trip, latency, and
// failure counters (ShardedClient.Stats).
//
// Failover. A transport-level failure — connection refused, connection
// died mid-request — triggers a health probe of the shard: a dead
// endpoint is failed over at once, a slow-but-alive one is kept until it
// exhausts a small failure budget (one client-side timeout must not
// cascade a loaded fleet into "all shards dead"). A failed-over shard's
// checks re-hash onto the survivors; the ring walk skips dead shards, so
// only the dead shard's keys move, and they land exactly where the ring
// without that shard would have put them. Served errors propagate
// instead: they would reproduce identically on any shard. Health
// re-probes every shard and revives the ones that answer. Each shard
// independently keeps the v1 per-check fallback, so a fleet may mix
// batch-capable and pre-batch servers.
//
// Registry-aware servers. batfishd serves the version-gated /v1/scenario
// endpoint: a client names a registered topology family ("fat-tree:4")
// and the server — validating the name against its own scenario registry
// — pre-warms its shared parse cache by synthesizing the family with the
// deterministic simulated LLM and parsing the resulting configurations,
// so a client then driving the same family hits warm parses on its
// batched checks. A shard fleet's warm broadcast is ring-scoped
// (scenario protocol v2): each request carries the fleet's endpoint list
// plus the addressed shard, the server rebuilds the same FNV-1a ring the
// sharded client hashes with, and parses only the configurations the
// ring routes to it — the other shards' share would never be asked of
// it. A warm also registers the family's spec and requirement bodies
// content-addressed by rest.RefDigest; batched checks then ship digests
// instead of bodies (batch protocol v3) and the server substitutes its
// registry copies, with an unresolvable digest failing the batch rather
// than mis-answering — the client latches back to full bodies after one
// rejected round-trip. Newer dialects are rejected with 400, which
// clients treat like the missing endpoint of a pre-registry binary:
// requests are stamped with the dialect their payload actually uses, so
// a mixed fleet keeps every shard at the newest dialect it speaks — the
// same backward-compatible-upgrade discipline as the batch protocol's
// version gate. cosynth accepts a repeatable, comma-separated -rest
// endpoint list (a fleet builds the ring) and -shards N to spawn
// in-process shard servers for tests and benchmarks.
//
// # Concurrent per-router synthesis
//
// Each router's repair loop is independent — per-router prompts,
// per-router verifiers — so Synthesize accepts a Parallelism option that
// repairs routers on a bounded worker pool. Models that can fork
// (llm.Forker — the simulated synthesizer is one, its sessions being
// pure functions of their seed) give every worker a private session, so
// no lock serializes the hot prompt path; models that cannot fork fall
// back to a mutex-guarded shared session. All workers share one
// CachedVerifier, whose state is striped across 64 shards so concurrent
// lookups do not contend on one lock (the parse cache beneath it is
// striped the same way). Per-router transcripts merge deterministically
// in topology order: on runs that converge, leverage accounting, punted
// findings, and final configurations are identical whichever model
// sharing mode served them (TestForkedParallelSynthesisByteIdentical
// pins forked against locked on every registry scenario; on aborted runs
// the budgets differ — iteration caps and human give-ups are per-router
// in parallel, per-run sequentially). The wall-clock win comes from
// avoiding the sequential loop's whole-network re-verification scans
// plus core parallelism where available.
//
// # Scaling past the paper
//
// The paper stops at a five-router star; the scale wall this library
// pushes on is two orders of magnitude further out, and three changes
// carry it there (benchmark E18, BenchmarkScaleWall, measures the
// composite):
//
// Compositional global check. The full BGP simulation re-derives what
// the verified local specs already guarantee: CoverageComplete is the
// proof obligation that local obligations compose into the global
// no-transit property. lightyear.CheckCompositionalNoTransit exploits
// it — when coverage is complete and every local obligation verifies,
// it checks the structural preconditions (BGP sessions on every
// topology edge, networks announced, ingress liveness) instead of
// simulating route propagation, and spends the saved time on seeded
// sampled falsification: a handful of (router, egress-policy) sites get
// a permit-all clause spliced into a shallow copy, and the local
// checker must catch each one — a vacuous check cannot pass. The
// simulation stays the default (cosynth -global simulated); -global
// compositional selects the fast path, which falls back to the full
// simulation whenever coverage is incomplete, and both record which
// checker ran (GlobalResult.Method) plus the falsification probes.
// TestCompositionalAgreesWithSimulation pins verdict agreement across
// every registry scenario; transcripts are byte-identical by
// construction, since the global check runs after the repair loop
// finishes.
//
// Wide addressing. Generated graphs address links as 10.<lo>.<hi>.0/24
// and attachments as 20.<ord>.0.0 — schemes that exhaust an octet at
// ~250 routers. Past that bound (netgen), the whole graph switches to
// the wide scheme: links numbered by sorted edge index split across two
// octets, attachment subnets likewise, ISP stub ASes rebased high. The
// switch is all-or-nothing per graph — mixing schemes would collide
// subnets — and graphs within the legacy bound stay byte-identical, so
// existing transcripts and seeds are untouched while random:500
// synthesizes end to end.
//
// Profile-guided fixes. cosynth and cofuzz take -cpuprofile/-memprofile
// (internal/prof); profiling the fuzz campaign showed every worker
// regenerating its case's topology and re-simulating the global check
// mid-pipeline, so campaigns memoize generated topologies across cases
// and run the compositional check in-pipeline — the oracle still
// re-proves local-implies-global with the full simulation independently
// per case.
//
// # Incremental verification
//
// The simulated global check was the demonstrated scale wall for runs
// that keep -global simulated: every repair iteration re-simulates the
// whole network from scratch even though a prompt changes exactly one
// router. batfish.Sim is now a persistent session — Update(router, dev)
// swaps one device in, RunIncremental() replays the flood from the
// changed router's frontier outward, using the converged run's per-round
// RIB history to prove which routers the change cannot reach. Any
// condition the replay cannot prove equivalent — no history, prior
// non-convergence, an interface address change, an unknown router —
// falls back to a cold run inside the same session, so the answer is
// the cold answer by construction, merely cheaper when cheapness is
// provable (the equivalence suite pins byte-identical results across
// every registry scenario, every injected LLM-error class, and
// mutate/revert sequences).
//
// lightyear.GlobalSession carries the session across the no-transit
// check: Check(devs, changed) with a nil change set rebuilds cold, an
// explicit change list replays incrementally, and a change list naming
// a missing device reports exactly the cold check's error. The repair
// loops thread hints through suite.GlobalHint — the engine's
// globalTracker diffs configuration text between iterations itself
// (never trusting a caller's claim) and hands the changed-router set
// plus the prior digest to any verifier advertising the
// suite.IncrementalGlobal capability. core.CachedVerifier keeps an
// in-process GlobalSession when the underlying verifier is local;
// rest.Client speaks the v2 session dialect (prior digest in, server-
// side sessions keyed by configuration digest, server-side diffing,
// FIFO eviction), degrades a stale digest to a cold run, and latches
// back to the stateless v1 check after one 400 from a pre-session
// server — the same backward-compatible-upgrade discipline as every
// other protocol bump. Transcripts are byte-identical with the session
// on or off; benchmark E20 (BenchmarkIncrementalGlobal) measures the
// per-iteration win, and the prompt-render series measures the
// modularizer's one-pass preamble rendering (satellite of the same
// wall: prompts were re-deriving the O(V+E) topology description per
// router, O(V·(V+E)) per run).
//
// # Incremental configuration pipeline
//
// The same once-per-iteration waste existed below the verifiers: a
// repair iteration edits one stanza of one router's configuration, yet
// the engine re-rendered every section of the prompt product, re-parsed
// the whole revision, and re-shipped the full config text to every
// shard. The configuration pipeline is now stanza-incremental end to
// end, behind the same contract as every other accelerator — byte-
// identical outputs, with a FullRender/WholeParseCache off-switch the
// equivalence gates compare against.
//
// Segmentation (netcfg.Stanza, cisco.SplitStanzas, juniper.SplitStanzas)
// is lossless by construction: JoinStanzas reproduces the text exactly,
// property-tested across every registry scenario and every injected
// LLM-error class. Each stanza carries a kind, a name, and a SHA-256
// digest — the address the rest of the pipeline keys on.
//
// Rendering (internal/llm) memoizes per-section render products by a
// section signature, so a fix that touches one router's BGP stanza
// re-renders that stanza and reuses the rest. Parsing
// (batfish.NewParseCache) answers a whole-config miss by splitting the
// revision, looking up each stanza's fragment parse in a digest-keyed
// sub-cache (with a durable disk tier via SetFragmentStore), and
// reassembling; a split memo of recent revisions lets the splitter
// resume from the longest common prefix of a prior split, so a one-line
// edit re-splits and re-hashes only the changed tail. Any assembly the
// dialect cannot prove safe — Junos entirely, or a merge the assembler
// rejects — falls back to the whole parse, identical by construction.
//
// On the wire, batch protocol v4 ships config deltas: the client sends
// stanza digests plus only the stanza bodies the server has not
// acknowledged, and the server reassembles against its fragment store.
// A v3 fleet rejects the dialect at handshake and the client degrades
// to full-config batches (the sharded-3-v3 CI leg pins this interop).
// Benchmark E21 (BenchmarkIncrementalConfig) measures the per-iteration
// render+parse cost and bytes-on-wire, incremental against full.
//
// # Fuzzing the LLM error space
//
// The paper's claim is about erroneous LLM output, so the erroneous
// output itself is a first-class input space here (internal/fuzz). An
// ErrorPlan keys injected error classes by attachment — which class
// fires at which (router, external-neighbor, direction) site — behind a
// compatible seam in the simulated LLM (llm.SynthConfig.Plan supersedes
// the per-router-name Errors map; attachment-scoped classes corrupt only
// the addressed site's ingress tag or egress filter, so a dual-homed
// router can carry one broken and one clean filter). A seeded Campaign
// sweeps (family × size × seed × derived plan) cases over the scenario
// registry on a bounded worker pool — the random family varies its graph
// per (size, seed) via netgen.RandomWith — against any verification
// backend, in-process or sharded REST. An oracle asserts the end-to-end
// properties on every case: spec coverage (CoverageComplete), verified
// synthesis under the injected plan, local-specs-imply-global on the
// final configurations (optionally falsified for non-vacuousness), and
// iterations bounded in the injected-error count (Result.Iterations).
//
// A failing case shrinks deterministically along two axes — topology
// (size, then the random family's extra edges, re-homing orphaned plan
// sites onto the smaller graph) and plan cardinality (whole sites, then
// single classes) — every candidate gated on reproducing the original
// failure, down to a minimal counterexample in the JSON report. Replay
// is exact and double-ended: cofuzz -replay re-runs the recorded oracle,
// and cosynth -mode notransit -errors fuzz.json regenerates the same
// topology and plan through the main CLI byte-identically. The
// llm.SErrEgressDenyAll class (no rectification formula, no operator
// recipe — the paper's give-up regime) deliberately seeds oracle
// violations for testing the engine itself; the default campaign
// alphabet excludes it, so cofuzz doubles as a pipeline regression gate
// (the CI smoke job runs one budgeted sweep per push).
//
// # Durability and crash recovery
//
// Every run so far assumed the process survives it; this layer removes
// that assumption. The contract throughout: a crash — SIGKILL, OOM, a
// severed verifier — costs wall-clock time, never results. Three
// mechanisms carry it (benchmark E19, BenchmarkWarmRestart, measures
// the first; the CI kill-resume-smoke job proves the second on a real
// SIGKILL):
//
// Durable verification cache. internal/durable is a disk tier mounted
// under the striped in-memory verification cache: content-addressed by
// the same suite.Key (sha256 over the check's wire form) the memory
// stripes and the batched protocol already use, written atomically
// (temp file, fsync, rename), corruption quarantined rather than
// trusted, and evicted oldest-first past a size bound. One directory
// serves every process that touches verification — the engine
// (Translate/Synthesize options CacheDir, cosynth/cofuzz -cache-dir),
// batfishd -cache-dir, and the CLIs' in-process shards — so a restarted
// run answers from disk what its predecessor already proved
// (CacheStats.DiskHits/DiskWrites). The tier changes cost, never
// results: the warm-restart tests re-prove byte-identical transcripts.
//
// Checkpoint and resume. With CheckpointPath set (cosynth -checkpoint),
// the pipeline snapshots progress atomically after every save point:
// per pipeline iteration in the sequential repair loop, per completed
// router in the parallel pool, keyed by a RunKey hashed over the run's
// coordinates so a checkpoint never resumes into a different run.
// Restore is replay-based — the deterministic simulated LLM re-derives
// its state from the recorded conversation, with an RNG-cursor check
// guarding drift — so -resume picks up mid-run and finishes with a
// transcript byte-identical to an uninterrupted one, proven across
// every registry scenario, under repeated kills, and in parallel mode.
// fuzz campaigns checkpoint the same way (cofuzz -checkpoint/-resume):
// completed case results are reused verbatim and free — they bypass
// even the wall-clock budget — and a knob hash refuses checkpoints from
// campaigns that would have produced different outcomes. Crash seams
// (core.CheckpointOptions.AbortAfterSaves, fuzz.Campaign.
// AbortAfterCases) inject the kill deterministically in tests, and the
// checkpoint writer itself is kill-tested at every syscall boundary.
//
// Transient-fault tolerance. The REST client classifies failures:
// transport errors (connection refused, severed mid-body, timeouts)
// retry up to MaxAttempts with capped full-jitter exponential backoff;
// served errors and caller context cancellation do not — cancellation
// propagates immediately as the bare context error without consuming
// retry or failover budget. Above the client, the shard ring's failover
// budget counts consecutive failures, reset on any served request, so a
// long campaign against a slightly-flaky fleet does not accumulate
// isolated timeouts into a spurious failover; cumulative counts remain
// visible in ShardStat. internal/faultinject supplies the chaos side —
// handler wrappers that sever connections after, before, or every N
// requests — wired into cofuzz -kill-shard for mid-campaign shard
// murder and into the failover and retry tests.
//
// # Observability
//
// One zero-dependency telemetry layer (internal/obs) watches the whole
// pipeline; it reports runs and never steers them — transcripts,
// configurations, and verdicts are byte-identical with telemetry off,
// on, or scraped mid-run (the accelerated byte-identity gate runs a
// live scraper against the registry to prove it).
//
// Metrics: a registry of named counters, gauges, and fixed-bucket
// histograms with atomic hot paths. Components own their instruments
// from birth (a zero-value obs.Counter is a standalone atomic) and a
// registry adopts them on request — RegisterCounter exposes the very
// instrument that has been counting all along, so stats structs
// (CacheStats, ShardStat, durable.Stats) become views over the same
// numbers a scrape sees. Naming scheme: `<system>_<subsystem>_<what>_
// <unit>` with the `_total` suffix on counters — cosynth_verify_cache_
// hits_total, cosynth_parse_fragment_disk_hits_total, cosynth_rest_
// calls_total{endpoint="..."}, cosynth_durable_writes_total,
// batfishd_batch_checks_total — and `_seconds` histograms for
// latencies (cosynth_verify_dispatch_seconds, cosynth_rest_batch_
// seconds, batfishd_batch_seconds).
//
// Endpoints: batfishd serves GET /metrics (Prometheus text format
// 0.0.4) and GET /debug/vars (the same registry as JSON) on its main
// listener; cosynth and cofuzz serve both via -metrics-addr for the
// run's duration. cmd/promcheck validates an exposition offline with
// the same dependency-free parser CI uses (obs.ValidateExposition).
//
// Traces: -trace streams one JSONL obs.Event per pipeline action —
// llm_call, render, parse, local_check (outcome hit/check/prefetch),
// global_check (simulated/incremental/cold/compositional), cache_hit
// and cache_miss (tier memory/disk), batch_rpc (per shard, with
// protocol version and bytes), retry, failover, checkpoint_save,
// checkpoint_restore, fuzz_case, and one closing run span — keyed by
// run label, iteration, router, and attachment. `cosynth
// -trace-summary trace.jsonl` folds a trace into the per-stage and
// per-shard attribution tables: top-level stages (marked *) partition
// a sequential run's wall time; nested detail events are tallied but
// excluded from attribution so nothing is double counted.
//
// # The stack
//
// Everything is implemented from scratch on the standard library:
//
//   - Cisco IOS and Junos parsers, printers, and syntax checkers
//     (internal/cisco, internal/juniper) standing in for Batfish's parse
//     warnings;
//   - a symbolic route-policy engine (internal/symbolic) behind both the
//     Campion-style translation differ (internal/campion) and the Batfish
//     SearchRoutePolicies substitute (internal/batfish);
//   - a BGP control-plane simulator for the global no-transit check
//     (internal/batfish), exposed over a REST wrapper with a batched
//     endpoint (internal/batfish/rest, cmd/batfishd, internal/suite for
//     the shared check types);
//   - the topology verifier, scenario registry / network generators,
//     modularizer, humanizer, and Lightyear-style local-policy checker of
//     the paper's Figure 3;
//   - a simulated GPT-4 (internal/llm) whose error model is calibrated to
//     the paper's Tables 1–3; and
//   - the COSYNTH engine (internal/core): the Stage/RunPipeline driver,
//     the two use-case compositions, and leverage accounting; and
//   - the fuzz campaign engine (internal/fuzz, cmd/cofuzz): attachment-
//     keyed error plans, the end-to-end oracle, and the two-axis
//     shrinker; and
//   - the durability layer: the content-addressed disk cache tier
//     (internal/durable), pipeline and campaign checkpoint/resume, REST
//     retry with jittered backoff, and the connection-severing chaos
//     wrappers (internal/faultinject).
//
// This package is the stable facade: the use-case entry points
// (Translate, Synthesize, SynthesizeNoTransit), the topology registry
// (Topologies, GenerateTopology), and the experiment runners that
// regenerate every table and figure of the paper plus the extension
// experiments (see EXPERIMENTS.md and bench_test.go's BENCH JSON
// output).
package repro
