// Package repro is COSYNTH: a reproduction of "What do LLMs need to
// Synthesize Correct Router Configurations?" (HotNets 2023) as a Go
// library.
//
// The paper proposes Verified Prompt Programming (VPP): pair an LLM with a
// suite of network-configuration verifiers, convert verifier findings into
// natural-language correction prompts automatically (a "humanizer"), and
// measure leverage — automated prompts per human prompt. This module
// implements the whole stack from scratch on the standard library:
//
//   - Cisco IOS and Junos parsers, printers, and syntax checkers
//     (internal/cisco, internal/juniper) standing in for Batfish's parse
//     warnings;
//   - a symbolic route-policy engine (internal/symbolic) behind both the
//     Campion-style translation differ (internal/campion) and the Batfish
//     SearchRoutePolicies substitute (internal/batfish);
//   - a BGP control-plane simulator for the global no-transit check
//     (internal/batfish), exposed over a REST wrapper
//     (internal/batfish/rest, cmd/batfishd);
//   - the topology verifier, network generator, modularizer, humanizer,
//     and Lightyear-style local-policy checker of the paper's Figure 3;
//   - a simulated GPT-4 (internal/llm) whose error model is calibrated to
//     the paper's Tables 1–3; and
//   - the COSYNTH engine (internal/core) that drives the loop and
//     accounts for leverage.
//
// This package is the stable facade: the two use-case entry points
// (Translate, SynthesizeNoTransit) and the experiment runners that
// regenerate every table and figure of the paper (see EXPERIMENTS.md).
package repro
